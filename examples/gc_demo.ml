(* The relocating generational collector of §4.2, live.

     dune exec examples/gc_demo.exe

   Builds a linked structure in tagged memory, drops some of it,
   collects, and shows:
   - live data survives and is bit-identical, at new addresses
     (relocation — so §3.6's address-keyed hash tables would break);
   - garbage is reclaimed even though an *integer* copy of its address
     still exists (tags make the collector accurate: integers cannot
     hoard);
   - the old-generation write barrier keeps old-to-young pointers
     alive. *)

module Gc = Cheri_gc.Gc
module Mem = Cheri_tagmem.Tagmem
module Cap = Cheri_core.Capability
module Ops = Cheri_core.Cap_ops

let () =
  let mem = Mem.create ~size_bytes:(1 lsl 20) () in
  let gc = Gc.create mem { Gc.heap_base = 0x1000L; nursery_bytes = 8192; tenured_bytes = 65536 } in

  (* cons cells: next capability at +0, value at +32 *)
  let cons v next =
    let c = Gc.alloc gc ~size:64 in
    Mem.store_cap_i64 mem ~addr:(Cap.address c) next;
    Mem.store_int_i64 mem ~addr:(Int64.add (Cap.address c) 32L) ~size:8 v;
    c
  in
  let rec sum cap acc =
    if not (Ops.c_get_tag cap) then acc
    else
      let v = Mem.load_int_i64 mem ~addr:(Int64.add (Cap.address cap) 32L) ~size:8 in
      sum (Mem.load_cap_i64 mem ~addr:(Cap.address cap)) (Int64.add acc v)
  in

  (* a rooted list 1..8 and an unrooted garbage list *)
  let live = ref Cap.null in
  for i = 1 to 8 do
    live := cons (Int64.of_int i) !live
  done;
  let root = Gc.new_root gc !live in
  let garbage = cons 999L (cons 998L Cap.null) in
  let garbage_addr = Cap.address garbage in

  Format.printf "before collection: %d objects, list sum = %Ld@." (Gc.live_objects gc)
    (sum (Gc.root_get root) 0L);
  Format.printf "head of list at 0x%Lx; garbage at 0x%Lx@."
    (Cap.address (Gc.root_get root))
    garbage_addr;

  (* an integer copy of the garbage address — a conservative collector
     would be forced to keep the object alive *)
  let hoard = garbage_addr in

  Gc.collect_minor gc;

  Format.printf "@.after minor collection:@.";
  Format.printf "objects: %d (garbage gone)@." (Gc.live_objects gc);
  Format.printf "list sum: %Ld (identical)@." (sum (Gc.root_get root) 0L);
  Format.printf "head now at 0x%Lx (relocated!)@." (Cap.address (Gc.root_get root));
  Format.printf "integer 0x%Lx still names the old address, but the object is %s@." hoard
    (if Gc.is_live_address gc hoard then "alive (?!)" else "dead — integers cannot hoard");

  (* old-to-young: store a young cell into the now-tenured head *)
  let young = cons 4242L Cap.null in
  let head_addr = Cap.address (Gc.root_get root) in
  Mem.store_cap_i64 mem ~addr:head_addr young;
  Gc.write_barrier gc head_addr;
  Gc.collect_minor gc;
  let through = Mem.load_cap_i64 mem ~addr:(Cap.address (Gc.root_get root)) in
  Format.printf "@.old-to-young pointer after another minor collection: %s (value %Ld)@."
    (if Ops.c_get_tag through then "valid" else "LOST")
    (Mem.load_int_i64 mem ~addr:(Int64.add (Cap.address through) 32L) ~size:8);

  Gc.collect_major gc;
  let st = Gc.stats gc in
  Format.printf "@.totals: %d minor, %d major, %d objects copied (%d bytes), %d promoted@."
    st.Gc.minor_collections st.Gc.major_collections st.Gc.objects_copied st.Gc.bytes_copied
    st.Gc.objects_promoted
