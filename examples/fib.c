/* A small profiling target for the observability layer: heap-resident
   Fibonacci with a deliberate hot loop, used in README examples as

     cheri-run --profile examples/fib.c
*/
int main(void) {
  long n = 30;
  long *tab = (long *)malloc(8 * 32);
  tab[0] = 0;
  tab[1] = 1;
  for (long i = 2; i <= n; i++) {
    tab[i] = tab[i - 1] + tab[i - 2];
  }
  long acc = 0;
  for (long r = 0; r < 200; r++) {
    for (long i = 0; i <= n; i++) {
      acc = acc + tab[i];
    }
  }
  print_int(tab[n]);
  print_char('\n');
  print_int(acc % 100000);
  print_char('\n');
  free(tab);
  return 0;
}
