(* The fault-injection engine: deterministic derivation, key round
   trips, job-count-independent reports, and checkpoint restore. *)

module Rng = Cheri_inject.Rng
module Inject = Cheri_inject.Inject

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* -- deterministic derivation ------------------------------------------------- *)

let test_rng_deterministic () =
  let seq rng = List.init 16 (fun _ -> Rng.next rng) in
  let key = [ "w"; "abi"; "kind"; "7" ] in
  check_bool "same key, same stream" true (seq (Rng.of_key key) = seq (Rng.of_key key));
  check_bool "different key, different stream" false
    (seq (Rng.of_key key) = seq (Rng.of_key [ "w"; "abi"; "kind"; "8" ]));
  (* the separator matters: ["ab";"c"] and ["a";"bc"] are distinct keys *)
  check_bool "part boundaries are absorbed" false
    (seq (Rng.of_key [ "ab"; "c" ]) = seq (Rng.of_key [ "a"; "bc" ]))

let test_rng_below_in_range () =
  let rng = Rng.of_key [ "range" ] in
  for _ = 1 to 1000 do
    let n = 1 + (Rng.below rng 50) in
    let v = Rng.below rng n in
    if v < 0 || v >= n then Alcotest.failf "below %d produced %d" n v
  done

(* -- key round trips ----------------------------------------------------------- *)

let test_kind_keys_roundtrip () =
  List.iter
    (fun k ->
      match Inject.kind_of_key (Inject.kind_key k) with
      | Some k' -> check_string "round trip" (Inject.kind_key k) (Inject.kind_key k')
      | None -> Alcotest.failf "kind key %s did not parse back" (Inject.kind_key k))
    Inject.all_kinds;
  check_bool "unknown key rejected" true (Inject.kind_of_key "rowhammer" = None)

let test_pointer_protecting_partition () =
  (* the §4.2 guarantee covers stray stores and capability-field
     corruption; forged tags and plain-data flips are out of scope *)
  let expected = function
    | Inject.Tag_clear | Inject.Cap_field -> true
    | Inject.Bitflip | Inject.Tag_set | Inject.Alloc_fail -> false
  in
  List.iter
    (fun k ->
      check_bool (Inject.kind_key k) (expected k) (Inject.pointer_protecting k))
    Inject.all_kinds

let test_verdict_keys () =
  Alcotest.(check (list string))
    "verdict keys"
    [ "detected"; "masked"; "silent"; "hang" ]
    (List.map Inject.verdict_key
       [ Inject.Detected "trap"; Inject.Masked; Inject.Silent "why"; Inject.Hung ])

(* -- campaign determinism and restore ------------------------------------------ *)

(* A fast allocating workload so campaign tests stay cheap: faults have
   pointers and heap data to land on, but each run is a few thousand
   instructions. *)
let tiny : Inject.workload =
  {
    Inject.w_name = "tiny";
    w_source =
      (fun _ ->
        {|
int main(void) {
  long *a = (long *)malloc(8 * 32);
  long acc = 0;
  for (long i = 0; i < 32; i++) a[i] = i * 3;
  for (long r = 0; r < 40; r++)
    for (long i = 0; i < 32; i++) acc = acc + a[i];
  print_int(acc & 8191);
  print_char('\n');
  free(a);
  return 0;
}
|});
  }

let small_campaign () =
  Inject.default_campaign ~workloads:[ tiny ]
    ~kinds:[ Inject.Tag_clear; Inject.Bitflip ] ~seeds:2 ()

let test_campaign_jobs_invariant () =
  let c = small_campaign () in
  let r1 = Inject.run ~jobs:1 c in
  let r2 = Inject.run ~jobs:2 c in
  check_int "no errors" 0 (List.length r1.Inject.r_errors);
  check_int "full cross product" (3 * 2 * 2) (List.length r1.Inject.r_records);
  check_string "1-domain and 2-domain reports byte-identical"
    (Inject.report_json ~timing:false r1) (Inject.report_json ~timing:false r2);
  (* the matrix is consistent with the raw records *)
  let total =
    List.fold_left
      (fun acc ((_, _), (c : Inject.counts)) ->
        acc + c.Inject.n_detected + c.Inject.n_masked + c.Inject.n_silent + c.Inject.n_hung)
      0 (Inject.matrix r1)
  in
  check_int "matrix cells sum to the record count" (List.length r1.Inject.r_records) total

let test_campaign_full_restore () =
  let c = small_campaign () in
  let ck = Filename.temp_file "cheri_inject_test" ".jsonl" in
  let full = Inject.run ~jobs:1 ~checkpoint:ck c in
  (* resuming from a complete checkpoint re-runs nothing and reproduces
     the report byte for byte *)
  let restored = Inject.run ~jobs:1 ~resume:ck c in
  check_int "every record restored" (List.length full.Inject.r_records)
    restored.Inject.r_resumed;
  check_string "restored report byte-identical"
    (Inject.report_json ~timing:false full) (Inject.report_json ~timing:false restored);
  (* a checkpoint from different campaign parameters is refused *)
  (match Inject.run ~jobs:1 ~resume:ck { c with Inject.c_seeds = 3 } with
  | exception Inject.Resume_mismatch _ -> ()
  | _ -> Alcotest.fail "resume accepted a mismatched campaign");
  Sys.remove ck

let test_silent_count_matches_matrix () =
  let c = small_campaign () in
  let r = Inject.run ~jobs:1 c in
  List.iter
    (fun abi ->
      let via_matrix =
        List.fold_left
          (fun acc ((a, _), (cnt : Inject.counts)) ->
            if a = abi then acc + cnt.Inject.n_silent else acc)
          0 (Inject.matrix r)
      in
      check_int (abi ^ " silent totals agree") via_matrix
        (Inject.silent_count r ~abi Inject.all_kinds))
    [ "MIPS"; "CHERIv2"; "CHERIv3" ]

let suite =
  [
    Alcotest.test_case "rng is key-deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng below stays in range" `Quick test_rng_below_in_range;
    Alcotest.test_case "kind keys round trip" `Quick test_kind_keys_roundtrip;
    Alcotest.test_case "pointer-protecting partition" `Quick test_pointer_protecting_partition;
    Alcotest.test_case "verdict keys" `Quick test_verdict_keys;
    Alcotest.test_case "report independent of job count" `Slow test_campaign_jobs_invariant;
    Alcotest.test_case "full checkpoint restore" `Slow test_campaign_full_restore;
    Alcotest.test_case "silent_count agrees with the matrix" `Slow
      test_silent_count_matches_matrix;
  ]
