let () =
  Alcotest.run "cheri_c"
    [
      ("bits", Test_bits.suite);
      ("capability", Test_capability.suite);
      ("cap_ops", Test_cap_ops.suite);
      ("tagmem", Test_tagmem.suite);
      ("machine", Test_machine.suite);
      ("decoded", Test_decoded.suite);
      ("asm", Test_asm.suite);
      ("minic", Test_minic.suite);
      ("interp", Test_interp.suite);
      ("compiler", Test_compiler.suite);
      ("analysis", Test_analysis.suite);
      ("workloads", Test_workloads.suite);
      ("telemetry", Test_telemetry.suite);
      ("printers", Test_printers.suite);
      ("gc", Test_gc.suite);
      ("exec", Test_exec.suite);
      ("snapshot", Test_snapshot.suite);
      ("fuzz", Test_fuzz.suite);
      ("inject", Test_inject.suite);
      ("properties", Test_props.suite);
      ("perf_equiv", Test_perf_equiv.suite);
      ("obs", Test_obs.suite);
      ("service", Test_service.suite);
    ]
