(* Assembler/linker tests: symbol resolution, data directives, error
   reporting, and the loader's interaction with the heap allocator. *)

module I = Cheri_isa.Insn
module Machine = Cheri_isa.Machine
module Asm = Cheri_asm.Asm
module B = Asm.Builder

let check_int = Alcotest.(check int)
let check_i64 = Alcotest.(check int64)

let test_label_resolution () =
  let b = B.create () in
  B.emit b (I.J (I.Sym "end"));
  B.emit b I.Nop;
  B.label b "end";
  B.emit b I.Halt;
  let l = Asm.link b in
  (match l.Asm.code.(0) with
  | I.J (I.Abs 2) -> ()
  | i -> Alcotest.failf "unresolved jump: %a" I.pp i);
  check_int "symbol table" 2 (Asm.code_symbol l "end")

let test_undefined_symbol () =
  let b = B.create () in
  B.emit b (I.J (I.Sym "nowhere"));
  match Asm.link b with
  | exception Asm.Undefined_symbol "nowhere" -> ()
  | _ -> Alcotest.fail "expected Undefined_symbol"

let test_duplicate_label_rejected () =
  let b = B.create () in
  B.label b "l";
  match B.label b "l" with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "duplicate label accepted"

let test_fresh_labels_unique () =
  let b = B.create () in
  let l1 = B.fresh_label b "x" and l2 = B.fresh_label b "x" in
  Alcotest.(check bool) "distinct" true (l1 <> l2)

let test_data_directives () =
  let b = B.create () in
  B.data_bytes b "abc";
  B.data_align b 8;
  B.data_label b "w";
  B.data_word b 0x1122334455667788L;
  B.emit b I.Halt;
  let l = Asm.link b in
  check_i64 "aligned symbol" (Int64.add l.Asm.data_base 8L) (Asm.data_symbol l "w");
  check_int "data size" 16 (Bytes.length l.Asm.data);
  check_i64 "word contents" 0x1122334455667788L (Bytes.get_int64_le l.Asm.data 8)

let test_sym_addr_resolution () =
  let b = B.create () in
  B.data_label b "v";
  B.data_word b 7L;
  B.emit b (I.Li (8, I.Sym_addr ("v", 4L)));
  B.emit b I.Halt;
  let l = Asm.link b in
  match l.Asm.code.(0) with
  | I.Li (8, I.Imm a) -> check_i64 "address + addend" (Int64.add l.Asm.data_base 4L) a
  | i -> Alcotest.failf "unresolved immediate: %a" I.pp i

let test_code_symbol_as_immediate () =
  (* function pointers: a code label used in Li resolves to its index *)
  let b = B.create () in
  B.emit b (I.Li (8, I.Sym_addr ("fn", 0L)));
  B.emit b I.Halt;
  B.label b "fn";
  B.emit b I.Nop;
  let l = Asm.link b in
  match l.Asm.code.(0) with
  | I.Li (8, I.Imm 2L) -> ()
  | i -> Alcotest.failf "code symbol not resolved to index: %a" I.pp i

let test_loader_reserves_data () =
  (* the heap must never hand out addresses inside the data segment *)
  let b = B.create () in
  B.data_label b "blob";
  B.data_zeros b 4096;
  B.emit b (I.Li (2, I.Imm Machine.syscall_malloc));
  B.emit b (I.Li (4, I.Imm 64L));
  B.emit b I.Syscall;
  B.emit b (I.Alu (I.ADD, 4, 2, 0));
  B.emit b (I.Li (2, I.Imm Machine.syscall_exit));
  B.emit b I.Syscall;
  let l = Asm.link b in
  let m = Asm.make_machine l in
  match Machine.run m with
  | Machine.Exit addr ->
      let data_end = Int64.add l.Asm.data_base (Int64.of_int (Bytes.length l.Asm.data)) in
      Alcotest.(check bool) "allocation above the data segment" true (addr >= data_end)
  | o -> Alcotest.failf "unexpected outcome %a" Machine.pp_outcome o

let test_machine_rejects_unresolved () =
  match Machine.create_code (Machine.default_config Cheri_core.Cap_ops.V3) ~code:[| I.J (I.Sym "x") |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "machine accepted unresolved code"

let suite =
  [
    Alcotest.test_case "label resolution" `Quick test_label_resolution;
    Alcotest.test_case "undefined symbol" `Quick test_undefined_symbol;
    Alcotest.test_case "duplicate label rejected" `Quick test_duplicate_label_rejected;
    Alcotest.test_case "fresh labels unique" `Quick test_fresh_labels_unique;
    Alcotest.test_case "data directives" `Quick test_data_directives;
    Alcotest.test_case "symbol immediates" `Quick test_sym_addr_resolution;
    Alcotest.test_case "code symbols as immediates" `Quick test_code_symbol_as_immediate;
    Alcotest.test_case "loader reserves data segment" `Quick test_loader_reserves_data;
    Alcotest.test_case "machine rejects unresolved code" `Quick test_machine_rejects_unresolved;
  ]
