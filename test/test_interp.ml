(* Interpreter tests: run mini-C programs under the pointer models and
   check outcomes and output. Model-independent behaviour is tested
   under PDP-11 (simplest) and cross-checked under CHERIv3; the
   differential property at the bottom runs a program battery under
   every model and requires identical observable behaviour whenever no
   idiom is involved. *)

module I = Cheri_interp.Interp
module R = Cheri_models.Registry

let check_string = Alcotest.(check string)

let run_on model src =
  match I.run_with model src with
  | I.Exit (code, out) -> (code, out)
  | I.Fault (f, _) -> Alcotest.failf "unexpected fault: %a" Cheri_models.Fault.pp f
  | I.Stuck m -> Alcotest.failf "stuck: %s" m
  | I.Exhausted _ -> Alcotest.fail "unexpected step-limit hang"

let exit_code model src = fst (run_on model src)
let check_exit ?(model = R.pdp11) expected src = Alcotest.(check int64) "exit code" expected (exit_code model src)

let faults model src =
  match I.run_with model src with I.Fault _ -> true | _ -> false

let test_arith () =
  check_exit 42L "int main(void) { return 6 * 7; }";
  check_exit 1L "int main(void) { return 7 / 4; }";
  check_exit 3L "int main(void) { return 7 % 4; }";
  check_exit 255L "int main(void) { unsigned char c = 0xff; return c; }";
  (* signed char wraps *)
  check_exit (-1L) "int main(void) { char c = 0xff; long l = c; return l; }";
  check_exit 1L "int main(void) { unsigned int u = 0xffffffff; return u > 0 ? 1 : 0; }";
  (* 32-bit overflow wraps *)
  check_exit 0L "int main(void) { int x = 0x7fffffff; x = x + 1; return x == -2147483648 ? 0 : 1; }"

let test_unsigned_division () =
  check_exit 1L "int main(void) { unsigned long x = -1; return x / 2 > 0x7000000000000000 ? 1 : 0; }";
  check_exit 0L "int main(void) { long x = -1; return x / 2; }"

let test_shifts () =
  check_exit 8L "int main(void) { return 1 << 3; }";
  check_exit (-1L) "int main(void) { long x = -16; return x >> 4; }";
  check_exit 1L "int main(void) { unsigned int x = 0x80000000; return (x >> 31); }"

let test_control_flow () =
  check_exit 55L
    {|
int main(void) {
  long s = 0;
  for (int i = 1; i <= 10; i++) s += i;
  return s;
}
|};
  check_exit 4L
    {|
int main(void) {
  int n = 0;
  while (1) { n++; if (n == 4) break; }
  return n;
}
|};
  check_exit 25L
    {|
int main(void) {
  long s = 0;
  for (int i = 0; i < 10; i++) {
    if (i % 2 == 0) continue;
    s += i;
  }
  return s;
}
|}

let test_functions () =
  check_exit 120L
    {|
long fact(long n) { if (n <= 1) return 1; return n * fact(n - 1); }
int main(void) { return fact(5); }
|};
  check_exit 13L
    {|
long fib(long n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main(void) { return fib(7); }
|}

let test_pointers_and_arrays () =
  check_exit 10L
    {|
int main(void) {
  long a[4];
  for (int i = 0; i < 4; i++) a[i] = i + 1;
  long s = 0;
  long *p = &a[0];
  for (int i = 0; i < 4; i++) s += p[i];
  return s;
}
|};
  check_exit 7L
    {|
void set(long *p, long v) { *p = v; }
int main(void) { long x = 0; set(&x, 7); return x; }
|}

let test_structs () =
  check_exit 3L
    {|
struct point { long x; long y; };
int main(void) {
  struct point p;
  p.x = 1; p.y = 2;
  struct point q;
  q = p;              /* struct assignment */
  return q.x + q.y;
}
|};
  check_exit 6L
    {|
struct node { struct node *next; long v; };
int main(void) {
  struct node *head = (struct node*)0;
  for (long i = 1; i <= 3; i++) {
    struct node *n = (struct node*)malloc(sizeof(struct node));
    n->v = i;
    n->next = head;
    head = n;
  }
  long s = 0;
  while (head) { s += head->v; head = head->next; }
  return s;
}
|}

let test_unions () =
  (* type punning through a union: little-endian low byte *)
  check_exit 0x44L
    {|
union pun { long l; char bytes[8]; };
int main(void) {
  union pun u;
  u.l = 0x1122334455667744;
  return u.bytes[0];
}
|}

let test_strings_and_output () =
  let code, out =
    run_on R.pdp11
      {|
int main(void) {
  print_str("hello ");
  print_int(42);
  print_char('\n');
  return 0;
}
|}
  in
  Alcotest.(check int64) "exit" 0L code;
  check_string "output" "hello 42\n" out

let test_sizeof_differs_by_model () =
  let src = "int main(void) { return sizeof(char*); }" in
  Alcotest.(check int64) "mips pointer" 8L (exit_code R.pdp11 src);
  Alcotest.(check int64) "capability" 32L (exit_code R.cheriv3 src)

let test_malloc_free () =
  check_exit 9L
    {|
int main(void) {
  long *p = (long*)malloc(8);
  *p = 9;
  long v = *p;
  free(p);
  return v;
}
|}

let test_out_of_bounds_caught_by_cheri () =
  let src =
    {|
int main(void) {
  char *p = (char*)malloc(8);
  p[8] = 'x';     /* one past the end */
  return 0;
}
|}
  in
  Alcotest.(check bool) "cheriv3 faults" true (faults R.cheriv3 src);
  Alcotest.(check bool) "hardbound faults" true (faults R.hardbound src);
  Alcotest.(check bool) "pdp11 tolerates (within guard gap)" false (faults R.pdp11 src)

let test_use_after_free_models () =
  let src =
    {|
int main(void) {
  long *p = (long*)malloc(8);
  *p = 5;
  free(p);
  return *p == 5 ? 0 : 1;   /* use after free */
}
|}
  in
  Alcotest.(check bool) "relaxed catches UAF" true (faults R.relaxed src);
  Alcotest.(check bool) "strict catches UAF" true (faults R.strict src);
  (* this paper's CHERI is spatial-only: no revocation *)
  Alcotest.(check bool) "cheriv3 does not" false (faults R.cheriv3 src);
  Alcotest.(check bool) "pdp11 does not" false (faults R.pdp11 src)

let test_null_deref_faults_everywhere () =
  let src = "int main(void) { int *p = (int*)0; return *p; }" in
  List.iter
    (fun m ->
      let module M = (val m : Cheri_models.Model.S) in
      Alcotest.(check bool) (M.name ^ " faults on NULL deref") true (faults m src))
    R.all

let test_const_global_write_faults () =
  let src =
    {|
const int table = 7;
int main(void) {
  int *p = (int*)&table;
  *p = 8;
  return 0;
}
|}
  in
  (* the object itself is read-only (like a RO segment): every model
     refuses the write *)
  List.iter
    (fun m ->
      let module M = (val m : Cheri_models.Model.S) in
      Alcotest.(check bool) (M.name ^ " faults on RO write") true (faults m src))
    [ R.cheriv2 ]

let test_dhrystone_style_copy () =
  check_exit 0L
    {|
struct rec { long a; long b; char name[16]; };
int main(void) {
  struct rec r1;
  struct rec r2;
  r1.a = 1; r1.b = 2;
  r1.name[0] = 'D';
  r2 = r1;
  return (r2.a == 1 && r2.b == 2 && r2.name[0] == 'D') ? 0 : 1;
}
|}

(* differential battery: model-independent programs must agree under
   all seven models *)
let battery =
  [
    "int main(void) { return 6 * 7; }";
    {|
long gcd(long a, long b) { while (b) { long t = a % b; a = b; b = t; } return a; }
int main(void) { return gcd(252, 105); }
|};
    {|
int main(void) {
  long a[8];
  for (int i = 0; i < 8; i++) a[i] = i * i;
  long best = 0;
  for (int i = 0; i < 8; i++) if (a[i] > best) best = a[i];
  return best;
}
|};
    {|
struct s { long x; struct s *next; };
int main(void) {
  struct s *l = (struct s*)0;
  for (int i = 0; i < 5; i++) {
    struct s *n = (struct s*)malloc(sizeof(struct s));
    n->x = i; n->next = l; l = n;
  }
  long sum = 0;
  for (struct s *p = l; p; p = p->next) sum += p->x;
  return sum;
}
|};
    {|
int streq(const char *a, const char *b) {
  while (*a && *b && *a == *b) { a++; b++; }
  return *a == *b;
}
int main(void) { return streq("hello", "hello") && !streq("a", "b") ? 3 : 4; }
|};
  ]

let test_differential () =
  List.iteri
    (fun i src ->
      let runs = I.run_all src in
      let codes =
        List.map
          (fun (name, o) ->
            match o with
            | I.Exit (c, out) -> (name, c, out)
            | I.Fault (f, _) -> Alcotest.failf "battery %d: %s faulted: %a" i name Cheri_models.Fault.pp f
            | I.Stuck m -> Alcotest.failf "battery %d: %s stuck: %s" i name m
            | I.Exhausted _ -> Alcotest.failf "battery %d: %s hit the step limit" i name)
          runs
      in
      match codes with
      | [] -> Alcotest.fail "no models"
      | (_, c0, o0) :: rest ->
          List.iter
            (fun (name, c, o) ->
              if c <> c0 || o <> o0 then
                Alcotest.failf "battery %d: %s disagrees (%Ld vs %Ld)" i name c c0)
            rest)
    battery

(* Table 3 as a regression test: the reproduction must match the paper *)
let test_table3_matches_paper () =
  let module T3 = Cheri_interp.Table3 in
  let produced = T3.table () in
  List.iter
    (fun (r : T3.row) ->
      let expected = List.assoc r.T3.model_name T3.paper_expectation_strict_reading in
      List.iteri
        (fun i (idiom, got) ->
          let want = List.nth expected i in
          if got <> want then
            Alcotest.failf "%s / %s: produced %a, paper says %a" r.T3.model_name
              (Cheri_interp.Idiom_cases.name idiom) T3.pp_support got T3.pp_support want)
        r.T3.cells)
    produced

let suite =
  [
    Alcotest.test_case "integer arithmetic" `Quick test_arith;
    Alcotest.test_case "unsigned division" `Quick test_unsigned_division;
    Alcotest.test_case "shifts" `Quick test_shifts;
    Alcotest.test_case "control flow" `Quick test_control_flow;
    Alcotest.test_case "functions and recursion" `Quick test_functions;
    Alcotest.test_case "pointers and arrays" `Quick test_pointers_and_arrays;
    Alcotest.test_case "structs and lists" `Quick test_structs;
    Alcotest.test_case "union type punning" `Quick test_unions;
    Alcotest.test_case "strings and output" `Quick test_strings_and_output;
    Alcotest.test_case "sizeof differs by model" `Quick test_sizeof_differs_by_model;
    Alcotest.test_case "malloc/free" `Quick test_malloc_free;
    Alcotest.test_case "bounds checking by model" `Quick test_out_of_bounds_caught_by_cheri;
    Alcotest.test_case "use-after-free by model" `Quick test_use_after_free_models;
    Alcotest.test_case "null deref faults everywhere" `Quick test_null_deref_faults_everywhere;
    Alcotest.test_case "const object write" `Quick test_const_global_write_faults;
    Alcotest.test_case "struct copy" `Quick test_dhrystone_style_copy;
    Alcotest.test_case "differential battery" `Quick test_differential;
    Alcotest.test_case "Table 3 matches the paper" `Quick test_table3_matches_paper;
  ]

(* -- idioms beyond Table 3 ------------------------------------------------ *)

(* The "Last Word" idiom (§2): FreeBSD libc's strlen reads the string
   as aligned words, which may read past the object's end inside the
   final word. "It works in systems with page-based memory protection
   mechanisms, but not in CHERI where objects have byte granularity." *)
let last_word_src =
  {|
long fast_strlen(const char *s) {
  const unsigned long *w = (const unsigned long *)s;
  long n = 0;
  while (1) {
    unsigned long v = *w;
    for (int i = 0; i < 8; i++)
      if (((v >> (i * 8)) & 255) == 0) return n + i;
    n = n + 8;
    w = w + 1;
  }
  return n;
}
int main(void) {
  /* an 11-byte buffer whose NUL sits at offset 8: the second word
     read spans [8,16), three bytes past the allocation */
  char *buf = (char *)malloc(11);
  for (int i = 0; i < 8; i++) buf[i] = 'a' + i;
  buf[8] = 0;
  return fast_strlen(buf) == 8 ? 0 : 1;
}
|}

let test_last_word () =
  (* page-protected flat memory tolerates the overread *)
  Alcotest.(check bool) "PDP-11 tolerates last-word overread" false (faults R.pdp11 last_word_src);
  Alcotest.(check int64) "and computes the right length" 0L (exit_code R.pdp11 last_word_src);
  (* byte-granularity bounds do not *)
  Alcotest.(check bool) "CHERIv3 traps" true (faults R.cheriv3 last_word_src);
  Alcotest.(check bool) "HardBound traps" true (faults R.hardbound last_word_src)

(* The xor linked list (§3.5): each node stores prev^next. "None of
   these approaches handles some of the complex cases (for example,
   xor linked lists)" (§6) — the xor'd value carries at most one
   pointer's provenance, so even CHERIv3's intcap_t arithmetic cannot
   traverse: the recovered address has the wrong capability's bounds. *)
let xor_list_src =
  {|
struct xnode { intcap_t link; long v; };

int main(void) {
  struct xnode *a = (struct xnode *)malloc(sizeof(struct xnode));
  struct xnode *b = (struct xnode *)malloc(sizeof(struct xnode));
  struct xnode *c = (struct xnode *)malloc(sizeof(struct xnode));
  a->v = 1; b->v = 2; c->v = 3;
  a->link = (intcap_t)0 ^ (intcap_t)b;
  b->link = (intcap_t)a ^ (intcap_t)c;
  c->link = (intcap_t)b ^ (intcap_t)0;
  /* traverse forward: prev=0, cur=a */
  long sum = 0;
  struct xnode *prev = (struct xnode *)0;
  struct xnode *cur = a;
  while (cur) {
    sum = sum + cur->v;
    struct xnode *next = (struct xnode *)(cur->link ^ (intcap_t)prev);
    prev = cur;
    cur = next;
  }
  return sum == 6 ? 0 : 1;
}
|}

let breaks model src =
  match I.run_with model src with
  | I.Exit (0L, _) -> false
  | I.Exit _ | I.Fault _ -> true
  | I.Stuck m -> Alcotest.failf "stuck: %s" m
  | I.Exhausted _ -> Alcotest.fail "unexpected step-limit hang"

let test_xor_list () =
  (* integer-pointer models traverse happily *)
  Alcotest.(check int64) "PDP-11 traverses" 0L (exit_code R.pdp11 xor_list_src);
  Alcotest.(check int64) "Relaxed traverses" 0L (exit_code R.relaxed xor_list_src);
  (* provenance-tracking models cannot: the xor'd value carries at most
     one pointer's provenance. HardBound fails closed (trap); Strict's
     poisoned value reads back as null, silently truncating the list *)
  Alcotest.(check bool) "Strict breaks" true (breaks R.strict xor_list_src);
  Alcotest.(check bool) "HardBound faults" true (faults R.hardbound xor_list_src);
  (* even CHERIv3: the loaded integer is no capability at all *)
  Alcotest.(check bool) "CHERIv3 faults" true (faults R.cheriv3 xor_list_src)

let extra_suite =
  [
    Alcotest.test_case "Last Word idiom (§2)" `Quick test_last_word;
    Alcotest.test_case "xor linked list (§3.5)" `Quick test_xor_list;
  ]

let suite = suite @ extra_suite
