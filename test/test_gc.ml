(* Collector tests: accuracy from tags, relocation, promotion,
   write-barrier correctness, and the paper's §3.6 observations
   (addresses change, integers cannot hoard garbage). *)

module Gc = Cheri_gc.Gc
module Mem = Cheri_tagmem.Tagmem
module Cap = Cheri_core.Capability
module Ops = Cheri_core.Cap_ops

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_i64 = Alcotest.(check int64)

let setup ?(nursery = 4096) ?(tenured = 16384) () =
  let mem = Mem.create ~size_bytes:(1024 * 1024) () in
  let gc = Gc.create mem { Gc.heap_base = 0x1000L; nursery_bytes = nursery; tenured_bytes = tenured } in
  (mem, gc)

(* build a linked list of [n] cells in GC space; each cell: cap at 0,
   value at offset 32 *)
let cell_size = 64

let build_list mem gc n =
  let rec go acc i =
    if i = 0 then acc
    else begin
      let c = Gc.alloc gc ~size:cell_size in
      Mem.store_cap_i64 mem ~addr:(Cap.address c) acc;
      Mem.store_int_i64 mem ~addr:(Int64.add (Cap.address c) 32L) ~size:8 (Int64.of_int i);
      go c (i - 1)
    end
  in
  go Cap.null n

let rec list_sum mem cap acc =
  if not (Ops.c_get_tag cap) then acc
  else
    let v = Mem.load_int_i64 mem ~addr:(Int64.add (Cap.address cap) 32L) ~size:8 in
    list_sum mem (Mem.load_cap_i64 mem ~addr:(Cap.address cap)) (Int64.add acc v)

let test_alloc_bounds () =
  let _, gc = setup () in
  let c = Gc.alloc gc ~size:40 in
  check_bool "tagged" true (Ops.c_get_tag c);
  check_i64 "length is request" 40L (Ops.c_get_len c);
  check_int "one live object" 1 (Gc.live_objects gc)

let test_live_data_survives_minor () =
  let mem, gc = setup () in
  let head = Gc.new_root gc (build_list mem gc 10) in
  let before = list_sum mem (Gc.root_get head) 0L in
  Gc.collect_minor gc;
  let after = list_sum mem (Gc.root_get head) 0L in
  check_i64 "list contents preserved" before after;
  check_int "ten live objects" 10 (Gc.live_objects gc)

let test_garbage_reclaimed () =
  let mem, gc = setup () in
  (* unrooted garbage *)
  ignore (build_list mem gc 20);
  let live = Gc.new_root gc (build_list mem gc 3) in
  Gc.collect_minor gc;
  check_int "only rooted objects survive" 3 (Gc.live_objects gc);
  check_i64 "live list intact" 6L (list_sum mem (Gc.root_get live) 0L)

let test_objects_relocate () =
  let mem, gc = setup () in
  let r = Gc.new_root gc (build_list mem gc 1) in
  let before = Cap.address (Gc.root_get r) in
  Gc.collect_minor gc;
  let after = Cap.address (Gc.root_get r) in
  check_bool "object moved out of the nursery" true (before <> after);
  (* §3.6: address comparisons are not stable across collections *)
  check_i64 "data moved with it" 1L
    (Mem.load_int_i64 mem ~addr:(Int64.add after 32L) ~size:8)

let test_nursery_reset_and_detagged () =
  let mem, gc = setup () in
  let g = build_list mem gc 5 in
  let old_addr = Cap.address g in
  Gc.collect_minor gc;
  check_int "nursery empty" 0 (Gc.nursery_used gc);
  check_bool "stale granule detagged" false (Mem.tag_at_i64 mem old_addr)

let test_allocation_triggers_collection () =
  let mem, gc = setup ~nursery:2048 () in
  let r = Gc.new_root gc (build_list mem gc 4) in
  (* allocate much more than the nursery holds *)
  for _ = 1 to 100 do
    ignore (Gc.alloc gc ~size:cell_size)
  done;
  let st = Gc.stats gc in
  check_bool "minor collections happened" true (st.Gc.minor_collections > 0);
  check_i64 "rooted list survived the pressure" 10L (list_sum mem (Gc.root_get r) 0L)

let test_write_barrier () =
  let mem, gc = setup () in
  (* tenured holder object *)
  let holder = Gc.new_root gc (Gc.alloc gc ~size:32) in
  Gc.collect_minor gc (* promote holder *);
  (* young object stored into the old one: needs the barrier *)
  let young = Gc.alloc gc ~size:cell_size in
  Mem.store_int_i64 mem ~addr:(Int64.add (Cap.address young) 32L) ~size:8 99L;
  let slot = Cap.address (Gc.root_get holder) in
  Mem.store_cap_i64 mem ~addr:slot young;
  Gc.write_barrier gc slot;
  Gc.collect_minor gc;
  let reloaded = Mem.load_cap_i64 mem ~addr:(Cap.address (Gc.root_get holder)) in
  check_bool "pointer still valid" true (Ops.c_get_tag reloaded);
  check_i64 "young data survived via remembered set" 99L
    (Mem.load_int_i64 mem ~addr:(Int64.add (Cap.address reloaded) 32L) ~size:8)

let test_integers_cannot_hoard () =
  (* §3.6: with tags, an integer copy of an address does not keep the
     object alive — the antithesis of conservative collection *)
  let mem, gc = setup () in
  let c = Gc.alloc gc ~size:cell_size in
  let addr_as_int = Cap.address c in
  (* store the address as a plain integer (clears no tags; it IS data) *)
  let keeper = Gc.new_root gc (Gc.alloc gc ~size:32) in
  Mem.store_int_i64 mem ~addr:(Cap.address (Gc.root_get keeper)) ~size:8 addr_as_int;
  Gc.collect_minor gc;
  check_int "only the keeper survives" 1 (Gc.live_objects gc);
  check_bool "hoarded address is dead" false (Gc.is_live_address gc addr_as_int)

let test_major_collection () =
  let mem, gc = setup ~nursery:1024 ~tenured:8192 () in
  let r = Gc.new_root gc (build_list mem gc 6) in
  Gc.collect_minor gc;
  let tenured_before = Gc.tenured_used gc in
  check_bool "promoted into tenured" true (tenured_before > 0);
  (* churn tenured garbage then collect major *)
  for _ = 1 to 30 do
    ignore (Gc.alloc gc ~size:cell_size);
    Gc.collect_minor gc
  done;
  Gc.collect_major gc;
  check_i64 "live data survives major" 21L (list_sum mem (Gc.root_get r) 0L);
  check_int "exactly the list survives" 6 (Gc.live_objects gc)

let test_drop_root () =
  let mem, gc = setup () in
  let r = Gc.new_root gc (build_list mem gc 4) in
  Gc.drop_root gc r;
  Gc.collect_minor gc;
  check_int "nothing survives" 0 (Gc.live_objects gc)

let test_oom () =
  let _, gc = setup ~nursery:1024 ~tenured:1024 () in
  let keep = ref [] in
  match
    for _ = 1 to 200 do
      keep := Gc.new_root gc (Gc.alloc gc ~size:cell_size) :: !keep
    done
  with
  | exception Gc.Out_of_memory -> ()
  | () -> Alcotest.fail "expected Out_of_memory with every object rooted"

let prop_random_graph_survives =
  QCheck.Test.make ~name:"random list lengths survive collection with correct sums" ~count:50
    QCheck.(int_bound 30)
    (fun n ->
      let mem, gc = setup () in
      let r = Gc.new_root gc (build_list mem gc n) in
      Gc.collect_minor gc;
      Gc.collect_major gc;
      let expected = Int64.of_int (n * (n + 1) / 2) in
      list_sum mem (Gc.root_get r) 0L = expected && Gc.live_objects gc = n)

let suite =
  [
    Alcotest.test_case "alloc returns bounded caps" `Quick test_alloc_bounds;
    Alcotest.test_case "live data survives minor" `Quick test_live_data_survives_minor;
    Alcotest.test_case "garbage reclaimed" `Quick test_garbage_reclaimed;
    Alcotest.test_case "objects relocate" `Quick test_objects_relocate;
    Alcotest.test_case "nursery reset and detagged" `Quick test_nursery_reset_and_detagged;
    Alcotest.test_case "allocation triggers collection" `Quick test_allocation_triggers_collection;
    Alcotest.test_case "write barrier" `Quick test_write_barrier;
    Alcotest.test_case "integers cannot hoard garbage" `Quick test_integers_cannot_hoard;
    Alcotest.test_case "major collection" `Quick test_major_collection;
    Alcotest.test_case "dropped roots die" `Quick test_drop_root;
    Alcotest.test_case "out of memory" `Quick test_oom;
    QCheck_alcotest.to_alcotest prop_random_graph_survives;
  ]
