(* Golden regression for the zero-allocation hot-path work (PR 4).

   The step-loop restructuring is required to be semantics- AND
   timing-preserving: every (workload x ABI) cell below was captured at
   the pre-optimisation seed and must stay byte-identical — same
   output, same exit status, same cycle count, same retired-instruction
   count. A cycle drifting by one means the optimisation changed the
   timing model, not just the host speed, and fails loudly here.

   The allocation-budget test then pins the point of the exercise: the
   softcore must retire Dhrystone (CHERIv3, test scale) under 8 GC
   minor words per instruction even in the dev profile — the seed
   measured 41.59. *)

module W = Cheri_workloads
module Abi = Cheri_compiler.Abi
module Machine = Cheri_isa.Machine
module Codegen = Cheri_compiler.Codegen

let abi_of_name = function
  | "MIPS" -> Abi.Mips
  | "CHERIv2" -> Abi.Cheri Cheri_core.Cap_ops.V2
  | "CHERIv3" -> Abi.Cheri Cheri_core.Cap_ops.V3
  | s -> Alcotest.fail ("unknown ABI in golden table: " ^ s)

(* Captured at the pre-PR seed (commit c0619dd) with the scales below;
   (workload, abi, cycles, instret, md5 of output). *)
let golden =
  [
    ("Olden/Bisort", "MIPS", 4945444, 3108447, "a3651c55f957f3e15aa3f1d2ad6010bd");
    ("Olden/Bisort", "CHERIv2", 6038178, 3417666, "a3651c55f957f3e15aa3f1d2ad6010bd");
    ("Olden/Bisort", "CHERIv3", 5728935, 3211520, "a3651c55f957f3e15aa3f1d2ad6010bd");
    ("Olden/MST", "MIPS", 4163297, 2501868, "14f26ab6ce6e94fbaac1efdeb9b488a7");
    ("Olden/MST", "CHERIv2", 4540527, 2780367, "14f26ab6ce6e94fbaac1efdeb9b488a7");
    ("Olden/MST", "CHERIv3", 4262016, 2594701, "14f26ab6ce6e94fbaac1efdeb9b488a7");
    ("Olden/TreeAdd", "MIPS", 1925857, 1088340, "095426a3354837cbaab62bbbd7f34b75");
    ("Olden/TreeAdd", "CHERIv2", 3558411, 1192764, "095426a3354837cbaab62bbbd7f34b75");
    ("Olden/TreeAdd", "CHERIv3", 3453981, 1123148, "095426a3354837cbaab62bbbd7f34b75");
    ("Olden/Perimeter", "MIPS", 7074950, 2688533, "f62176661101cb58cfb5ebafc71d046f");
    ("Olden/Perimeter", "CHERIv2", 8981088, 2878481, "f62176661101cb58cfb5ebafc71d046f");
    ("Olden/Perimeter", "CHERIv3", 8791128, 2751849, "f62176661101cb58cfb5ebafc71d046f");
    ("Dhrystone", "MIPS", 1533211, 974197, "34c6e1feaf7f5084f3014d5d11fb727e");
    ("Dhrystone", "CHERIv2", 1540886, 981204, "34c6e1feaf7f5084f3014d5d11fb727e");
    ("Dhrystone", "CHERIv3", 1535372, 976202, "34c6e1feaf7f5084f3014d5d11fb727e");
    ("tcpdump", "MIPS", 1066334, 699736, "aa787131fc7299d90bac7a690db39f77");
    ("tcpdump", "CHERIv2", 1079845, 707658, "aa787131fc7299d90bac7a690db39f77");
    ("tcpdump", "CHERIv3", 1067596, 700608, "aa787131fc7299d90bac7a690db39f77");
    ("zlib", "MIPS", 1702140, 1087019, "2de642a328a5c957259252db252f0d00");
    ("zlib", "CHERIv2", 1711654, 1096071, "2de642a328a5c957259252db252f0d00");
    ("zlib", "CHERIv3", 1711654, 1096071, "2de642a328a5c957259252db252f0d00");
  ]

(* The exact sources the table was captured with. tcpdump's CHERIv2
   build uses the ported source (the v3 source needs pointer
   subtraction, which v2 lacks). *)
let source_for workload abi =
  let tcpdump_p = { W.Tcpdump_sim.packets = 200; passes = 1 } in
  match workload with
  | "Dhrystone" -> W.Dhrystone.source { W.Dhrystone.iterations = 500 }
  | "tcpdump" ->
      if abi = Abi.Cheri Cheri_core.Cap_ops.V2 then W.Tcpdump_sim.source_v2 tcpdump_p
      else W.Tcpdump_sim.source tcpdump_p
  | "zlib" -> W.Zlib_like.source { W.Zlib_like.input_size = 4096; boundary_copy = false }
  | _ ->
      let kname = String.sub workload 6 (String.length workload - 6) in
      let k = List.find (fun k -> k.W.Olden.kname = kname) W.Olden.kernels in
      k.W.Olden.source { W.Olden.scale = 1 }

let test_golden_cells () =
  List.iter
    (fun (workload, abi_name, cycles, instret, md5) ->
      let abi = abi_of_name abi_name in
      let m = W.Runner.run abi (source_for workload abi) in
      let cell = Printf.sprintf "%s/%s" workload abi_name in
      Alcotest.(check int) (cell ^ " cycles") cycles m.W.Runner.cycles;
      Alcotest.(check int) (cell ^ " instret") instret m.W.Runner.instret;
      Alcotest.(check string)
        (cell ^ " output md5")
        md5
        (Digest.to_hex (Digest.string m.W.Runner.output)))
    golden

(* The allocation budget. [Gc.minor_words] is exact (not sampled), so
   the measurement is deterministic up to what the run itself
   allocates; the budget leaves ~20% headroom over the measured 6.5. *)
let words_per_insn_budget = 8.0

let test_allocation_budget () =
  let abi = Abi.Cheri Cheri_core.Cap_ops.V3 in
  let src = W.Dhrystone.source { W.Dhrystone.iterations = 500 } in
  let linked = Codegen.compile_source abi src in
  (* warm-up run: first-touch effects (lazy forcing, cache growth)
     should not count against the budget *)
  ignore (Machine.run (Codegen.machine_for abi linked));
  let m = Codegen.machine_for abi linked in
  let w0 = Gc.minor_words () in
  (match Machine.run m with
  | Machine.Exit 0L -> ()
  | o -> Alcotest.failf "dhrystone did not exit cleanly: %a" Machine.pp_outcome o);
  let dw = Gc.minor_words () -. w0 in
  let wpi = dw /. float_of_int (Machine.stats m).Machine.st_instret in
  if wpi >= words_per_insn_budget then
    Alcotest.failf "allocation budget blown: %.2f minor words/insn (budget %.1f)" wpi
      words_per_insn_budget

let suite =
  [
    Alcotest.test_case "golden (cycles, instret, output) per workload x ABI" `Slow
      test_golden_cells;
    Alcotest.test_case "Dhrystone CHERIv3 under 8 minor words/insn" `Slow
      test_allocation_budget;
  ]
