(* The parallel execution engine: deterministic ordering, worker-fault
   isolation, and the fuzz shrinker property it exists to serve. *)

module Pool = Cheri_exec.Exec.Pool
module Obs = Cheri_obs.Obs
module Gen = Cheri_fuzz.Gen
module Shrink = Cheri_fuzz.Shrink
module Campaign = Cheri_fuzz.Campaign

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains hay sub =
  let n = String.length sub and m = String.length hay in
  let rec go i = i + n <= m && (String.sub hay i n = sub || go (i + 1)) in
  go 0

(* a deterministic, input-dependent computation with uneven cost *)
let work n =
  let acc = ref n in
  for i = 1 to 1000 * (1 + (n mod 7)) do
    acc := (!acc * 31) + i
  done;
  !acc

let strip cells = List.map (fun (c : _ Pool.cell) -> (c.Pool.index, c.Pool.result)) cells

(* -- pool determinism -------------------------------------------------------- *)

let test_pool_determinism () =
  let tasks = List.init 23 (fun i -> i) in
  let seq = Pool.map ~jobs:1 work tasks in
  let par = Pool.map ~jobs:4 work tasks in
  check_int "same number of cells" (List.length seq) (List.length par);
  check_bool "1-domain and 4-domain results identical and in submission order" true
    (strip seq = strip par);
  List.iteri (fun i (c : _ Pool.cell) -> check_int "index = position" i c.Pool.index) par;
  check_bool "per-task timing is non-negative" true
    (List.for_all (fun (c : _ Pool.cell) -> c.Pool.elapsed_s >= 0.) par)

let test_pool_more_jobs_than_tasks () =
  let cells = Pool.map ~jobs:8 work [ 1; 2; 3 ] in
  check_int "all tasks ran" 3 (List.length cells);
  check_bool "all succeeded" true
    (List.for_all (fun (c : _ Pool.cell) -> Result.is_ok c.Pool.result) cells)

let test_pool_empty () = check_int "empty task list" 0 (List.length (Pool.map ~jobs:4 work []))

(* -- worker-fault isolation --------------------------------------------------- *)

let test_pool_fault_isolation () =
  let f n = if n mod 3 = 0 then failwith (Printf.sprintf "boom %d" n) else work n in
  let cells = Pool.map ~jobs:4 f (List.init 12 (fun i -> i)) in
  check_int "every task has a cell" 12 (List.length cells);
  List.iteri
    (fun i (c : _ Pool.cell) ->
      match c.Pool.result with
      | Ok v ->
          check_bool "non-multiples of 3 succeed" true (i mod 3 <> 0);
          check_int "value correct despite neighbouring faults" (work i) v
      | Error e ->
          check_bool "multiples of 3 fail" true (i mod 3 = 0);
          check_int "error attributed to its task" i e.Pool.task;
          check_bool "error carries the exception" true
            (contains e.Pool.exn (Printf.sprintf "boom %d" i)))
    cells

(* -- retry, backoff, and the progress hook ------------------------------------- *)

let test_pool_retry_transient () =
  (* task 2 fails twice then succeeds: retries absorb the transient *)
  let tries = Array.make 5 0 in
  let f n =
    tries.(n) <- tries.(n) + 1;
    if n = 2 && tries.(n) < 3 then failwith "flaky" else n * 10
  in
  let cells = Pool.map ~jobs:1 ~retries:2 ~backoff_s:0. f [ 0; 1; 2; 3; 4 ] in
  List.iteri
    (fun i (c : _ Pool.cell) ->
      check_int "retried result correct" (i * 10) (Pool.get c);
      check_int "attempt count recorded" (if i = 2 then 3 else 1) c.Pool.attempts)
    cells

let test_pool_retry_exhausted () =
  let cells = Pool.map ~jobs:1 ~retries:2 ~backoff_s:0. (fun _ -> failwith "hard") [ 0 ] in
  match cells with
  | [ c ] -> (
      check_int "all attempts spent" 3 c.Pool.attempts;
      match c.Pool.result with
      | Error e ->
          check_bool "error names the final attempt" true (contains e.Pool.exn "attempt 3")
      | Ok _ -> Alcotest.fail "deterministic failure should not succeed")
  | _ -> Alcotest.fail "expected one cell"

let test_pool_on_result_hook () =
  (* the hook fires exactly once per task, serialized, whatever the
     completion order across domains *)
  let seen = ref [] in
  let cells =
    Pool.map ~jobs:4
      ~on_result:(fun (c : _ Pool.cell) -> seen := c.Pool.index :: !seen)
      work
      (List.init 17 (fun i -> i))
  in
  check_int "a cell per task" 17 (List.length cells);
  Alcotest.(check (list int))
    "hook saw every task exactly once"
    (List.init 17 (fun i -> i))
    (List.sort compare !seen)

(* -- decorrelated-jitter backoff ------------------------------------------------ *)

let test_backoff_bounds () =
  let base = 0.01 in
  List.iter
    (fun seed ->
      List.iter
        (fun task ->
          let prev = ref base in
          for attempt = 1 to 12 do
            let d = Pool.backoff_duration ~base_s:base ~seed ~task ~attempt () in
            check_bool "pause at least base" true (d >= base);
            check_bool "pause within the decorrelated-jitter window" true
              (d <= Float.min (3. *. !prev) (64. *. base) +. 1e-12);
            check_bool "pause never exceeds the cap" true (d <= 64. *. base +. 1e-12);
            prev := d
          done)
        [ 0; 1; 7 ])
    [ 0; 42 ]

let test_backoff_reproducible () =
  let d () = Pool.backoff_duration ~base_s:0.25 ~seed:9 ~task:3 ~attempt:4 () in
  check_bool "pure in (seed, task, attempt)" true (d () = d ());
  check_bool "different seeds decorrelate" true
    (Pool.backoff_duration ~base_s:0.25 ~seed:1 ~task:3 ~attempt:4 ()
    <> Pool.backoff_duration ~base_s:0.25 ~seed:2 ~task:3 ~attempt:4 ());
  check_bool "zero base disables the pause" true
    (Pool.backoff_duration ~base_s:0. ~seed:1 ~task:1 ~attempt:1 () = 0.);
  check_bool "attempt 0 takes no pause" true
    (Pool.backoff_duration ~base_s:1. ~seed:1 ~task:1 ~attempt:0 () = 0.)

let test_backoff_explicit_cap () =
  (* the cap is a hard contract: sweep deep streaks across seeds and
     tasks and pin the maximum the curve can ever quote, for both the
     default (64 x base) and an explicit [cap_s] *)
  let base = 0.5 in
  let worst cap_s =
    let m = ref 0. in
    List.iter
      (fun seed ->
        List.iter
          (fun task ->
            for attempt = 1 to 100 do
              let d =
                match cap_s with
                | None -> Pool.backoff_duration ~base_s:base ~seed ~task ~attempt ()
                | Some c -> Pool.backoff_duration ~cap_s:c ~base_s:base ~seed ~task ~attempt ()
              in
              if d > !m then m := d
            done)
          [ 0; 3; 11 ])
      [ 0; 1; 42 ];
    !m
  in
  check_bool "default cap is 64 x base" true (worst None <= (64. *. base) +. 1e-9);
  check_bool "deep streaks actually reach near the default cap" true
    (worst None > 32. *. base);
  check_bool "explicit cap_s bounds every pause" true (worst (Some 2.) <= 2. +. 1e-9);
  check_bool "explicit cap is reached, not just respected" true (worst (Some 2.) > 1.5);
  check_bool "cap below base clamps to base" true
    (worst (Some 0.1) <= base +. 1e-9 && worst (Some 0.1) >= base -. 1e-9);
  check_bool "non-positive cap falls back to the default" true
    (worst (Some 0.) <= (64. *. base) +. 1e-9 && worst (Some 0.) > 32. *. base)

(* -- preemptive slicing (map_sliced) -------------------------------------------- *)

(* a task that needs [1 + n mod 3] slice calls before completing *)
let sliced_init n = (n, 0)

let sliced_slice (n, k) =
  if k + 1 >= 1 + (n mod 3) then Pool.Done (work n) else Pool.Yield (n, k + 1)

let test_map_sliced_determinism () =
  let tasks = List.init 23 (fun i -> i) in
  let flat = Pool.map ~jobs:1 work tasks in
  let variants =
    [
      Pool.map_sliced ~jobs:1 ~init:sliced_init ~slice:sliced_slice tasks;
      Pool.map_sliced ~jobs:4 ~init:sliced_init ~slice:sliced_slice tasks;
    ]
  in
  List.iter
    (fun cells ->
      check_bool "sliced results identical to map, in submission order" true
        (strip cells = strip flat);
      List.iteri
        (fun i (c : _ Pool.cell) ->
          check_int "index = position" i c.Pool.index;
          check_int "slice invocations counted" (1 + (i mod 3)) c.Pool.slices)
        cells)
    variants;
  check_bool "map reports a single slice per task" true
    (List.for_all (fun (c : _ Pool.cell) -> c.Pool.slices = 1) flat)

let test_map_sliced_retry_restarts_from_init () =
  (* task 1 dies on its second slice for the first two attempts; the
     retry must restart from init, so the successful attempt still
     walks every slice *)
  let deaths = ref 0 in
  let slice (n, k) =
    if n = 1 && k = 1 && !deaths < 2 then begin
      incr deaths;
      failwith "flaky slice"
    end;
    sliced_slice (n, k)
  in
  let cells =
    Pool.map_sliced ~jobs:1 ~retries:2 ~backoff_s:0. ~init:sliced_init ~slice [ 0; 1; 2 ]
  in
  List.iteri
    (fun i (c : _ Pool.cell) ->
      check_int "sliced retry result correct" (work i) (Pool.get c);
      check_int "attempts recorded" (if i = 1 then 3 else 1) c.Pool.attempts)
    cells;
  check_int "the transient fired twice" 2 !deaths;
  (* task 1 needs 2 slices; two attempts died on slice 2, the third
     ran both — 6 slice invocations in total *)
  check_int "slices accumulate across attempts" 6 (List.nth cells 1).Pool.slices

let test_map_sliced_retry_exhausted () =
  let cells =
    Pool.map_sliced ~jobs:1 ~retries:1 ~backoff_s:0.
      ~init:(fun n -> n)
      ~slice:(fun _ -> failwith "hard")
      [ 0 ]
  in
  match cells with
  | [ c ] -> (
      check_int "all attempts spent" 2 c.Pool.attempts;
      match c.Pool.result with
      | Error e -> check_bool "error names the final attempt" true (contains e.Pool.exn "attempt 2")
      | Ok _ -> Alcotest.fail "deterministic failure should not succeed")
  | _ -> Alcotest.fail "expected one cell"

let test_map_sliced_init_failure_isolated () =
  let init n = if n = 2 then failwith "bad init" else sliced_init n in
  let cells = Pool.map_sliced ~jobs:2 ~init ~slice:sliced_slice [ 0; 1; 2; 3 ] in
  List.iteri
    (fun i (c : _ Pool.cell) ->
      match c.Pool.result with
      | Ok v ->
          check_bool "other tasks unaffected" true (i <> 2);
          check_int "value correct" (work i) v
      | Error e ->
          check_int "init failure attributed to its task" 2 e.Pool.task)
    cells

(* -- shrinker property --------------------------------------------------------- *)

(* An implementation pair with an injected divergence: the real PDP-11
   interpreter versus a copy that flips the low bit of the exit code. *)
let broken_pair () =
  let base = Campaign.interp_impl (List.hd Cheri_models.Registry.entries) in
  let broken =
    {
      Campaign.impl_name = "interp/broken";
      exec =
        (fun src ->
          let o = base.Campaign.exec src in
          {
            o with
            Campaign.impl = "interp/broken";
            status =
              (match o.Campaign.status with
              | Campaign.Exited c -> Campaign.Exited (Int64.logxor c 1L)
              | s -> s);
          });
    }
  in
  [ base; broken ]

let test_shrinker_property () =
  let impls = broken_pair () in
  let reproduces q = Campaign.divergent (Campaign.run_impls impls (Gen.render q)) in
  List.iter
    (fun seed ->
      let p = Gen.generate ~seed in
      check_bool "injected divergence reproduces on the original" true (reproduces p);
      let q = Shrink.minimize ~reproduces p in
      check_bool "minimized program still reproduces the divergence" true (reproduces q);
      check_bool "minimization never grows the program" true (Gen.size q <= Gen.size p);
      check_bool "flip-everything divergence shrinks strictly" true (Gen.size q < Gen.size p))
    [ 0; 1; 2 ]

let test_shrink_candidates_strictly_smaller () =
  List.iter
    (fun seed ->
      let p = Gen.generate ~seed in
      List.iter
        (fun c -> check_bool "every candidate renders strictly smaller" true (Gen.size c < Gen.size p))
        (Shrink.candidates p))
    [ 3; 7; 11; 19 ]

(* -- generator/campaign glue ---------------------------------------------------- *)

(* -- dynamic stream ----------------------------------------------------------- *)

let test_stream_matches_map_sliced () =
  let obs = Obs.create () in
  let results = ref [] in
  (* on_result is already serialized by the stream; no lock needed *)
  let on_result (c : _ Pool.cell) = results := c :: !results in
  let st =
    Pool.Stream.create ~jobs:4 ~obs ~init:sliced_init ~slice:sliced_slice ~on_result ()
  in
  let tasks = List.init 23 (fun i -> i) in
  List.iteri
    (fun i n -> check_int "submit returns the submission index" i (Pool.Stream.submit st n))
    tasks;
  Pool.Stream.close st;
  check_int "close drains everything" 0 (Pool.Stream.live st);
  let flat = Pool.map ~jobs:1 work tasks in
  let got =
    List.sort (fun (a : _ Pool.cell) b -> compare a.Pool.index b.Pool.index) !results
  in
  check_bool "stream results equal map results, keyed by submission index" true
    (strip got = strip flat);
  List.iter
    (fun (c : _ Pool.cell) ->
      check_int "slice invocations counted" (1 + (c.Pool.index mod 3)) c.Pool.slices)
    got;
  (* every Yield is one requeue: with 1 + (i mod 3) slices per task the
     requeue count is exactly the sum of (i mod 3) *)
  let requeues = List.fold_left (fun a (c : _ Pool.cell) -> a + (c.Pool.slices - 1)) 0 got in
  check_int "pool_requeues_total counts every yield" requeues
    (Obs.Counter.value (Obs.counter obs "pool_requeues_total"));
  check_int "no retries on a clean run" 0
    (Obs.Counter.value (Obs.counter obs "pool_retries_total"));
  check_bool "submit after close refused" true
    (try
       ignore (Pool.Stream.submit st 0);
       false
     with Invalid_argument _ -> true)

let test_retry_and_requeue_counters () =
  let obs = Obs.create () in
  let attempts = Array.make 6 0 in
  (* distinct indices are touched by distinct tasks, so plain mutation
     is race-free even across domains *)
  let flaky i =
    attempts.(i) <- attempts.(i) + 1;
    if attempts.(i) = 1 && i mod 2 = 0 then failwith "transient";
    work i
  in
  let cells = Pool.map ~jobs:2 ~retries:1 ~backoff_s:0.001 ~obs flaky (List.init 6 (fun i -> i)) in
  check_bool "transients absorbed" true
    (List.for_all (fun (c : _ Pool.cell) -> Result.is_ok c.Pool.result) cells);
  check_int "pool_retries_total ticks once per retry decision" 3
    (Obs.Counter.value (Obs.counter obs "pool_retries_total"));
  check_int "map never requeues" 0
    (Obs.Counter.value (Obs.counter obs "pool_requeues_total"))

let test_gen_render_deterministic () =
  List.iter
    (fun seed ->
      Alcotest.(check string)
        "render(generate seed) is reproducible" (Gen.source ~seed) (Gen.source ~seed))
    [ 0; 5; 42 ]

let test_campaign_clean_parallel () =
  let r = Campaign.run ~jobs:2 ~seeds:6 () in
  check_int "no divergences across ten implementations" 0 (List.length r.Campaign.divergences);
  check_int "no harness errors" 0 (List.length r.Campaign.errors);
  check_bool "campaign reports wall time" true (r.Campaign.wall_s >= 0.)

let test_campaign_flags_broken_impl () =
  let impls = broken_pair () in
  let r = Campaign.run ~impls ~shrink:true ~jobs:2 ~seeds:3 () in
  check_int "every seed diverges under the broken implementation" 3
    (List.length r.Campaign.divergences);
  List.iter
    (fun (d : Campaign.divergence) ->
      match d.Campaign.minimized with
      | None -> Alcotest.failf "seed %d: no minimized reproducer" d.Campaign.seed
      | Some m ->
          check_bool "reproducer is smaller than the originating program" true
            (String.length m < String.length d.Campaign.source);
          check_bool "dump carries per-implementation outcomes" true
            (List.length d.Campaign.outcomes = 2))
    r.Campaign.divergences

let suite =
  [
    Alcotest.test_case "pool determinism (1 vs 4 domains)" `Quick test_pool_determinism;
    Alcotest.test_case "pool with more jobs than tasks" `Quick test_pool_more_jobs_than_tasks;
    Alcotest.test_case "pool with empty task list" `Quick test_pool_empty;
    Alcotest.test_case "worker-exception isolation" `Quick test_pool_fault_isolation;
    Alcotest.test_case "bounded retry absorbs transients" `Quick test_pool_retry_transient;
    Alcotest.test_case "retry exhaustion keeps the error" `Quick test_pool_retry_exhausted;
    Alcotest.test_case "on_result hook fires once per task" `Quick test_pool_on_result_hook;
    Alcotest.test_case "backoff stays in the jitter window" `Quick test_backoff_bounds;
    Alcotest.test_case "backoff is reproducible" `Quick test_backoff_reproducible;
    Alcotest.test_case "backoff cap is explicit and pinned" `Quick test_backoff_explicit_cap;
    Alcotest.test_case "map_sliced determinism (1 vs 4 domains)" `Quick
      test_map_sliced_determinism;
    Alcotest.test_case "map_sliced retry restarts from init" `Quick
      test_map_sliced_retry_restarts_from_init;
    Alcotest.test_case "map_sliced retry exhaustion keeps the error" `Quick
      test_map_sliced_retry_exhausted;
    Alcotest.test_case "map_sliced init failure is isolated" `Quick
      test_map_sliced_init_failure_isolated;
    Alcotest.test_case "stream matches map_sliced + requeue counter" `Quick
      test_stream_matches_map_sliced;
    Alcotest.test_case "retry/requeue counters on private registry" `Quick
      test_retry_and_requeue_counters;
    Alcotest.test_case "generator is deterministic" `Quick test_gen_render_deterministic;
    Alcotest.test_case "shrink candidates strictly smaller" `Quick
      test_shrink_candidates_strictly_smaller;
    Alcotest.test_case "shrinker property (reproduces, never grows)" `Slow test_shrinker_property;
    Alcotest.test_case "clean campaign on the pool" `Slow test_campaign_clean_parallel;
    Alcotest.test_case "campaign flags and shrinks a broken model" `Slow
      test_campaign_flags_broken_impl;
  ]
