module Mem = Cheri_tagmem.Tagmem
module Cap = Cheri_core.Capability
module Perms = Cheri_core.Perms

let check_bool = Alcotest.(check bool)
let check_i64 = Alcotest.(check int64)
let check_int = Alcotest.(check int)

let mem () = Mem.create ~size_bytes:4096 ()

let test_int_roundtrip () =
  let m = mem () in
  List.iter
    (fun (size, v) ->
      Mem.store_int_i64 m ~addr:128L ~size v;
      check_i64 (Printf.sprintf "size %d" size) v (Mem.load_int_i64 m ~addr:128L ~size))
    [ (1, 0xabL); (2, 0xbeefL); (4, 0xdeadbeefL); (8, 0x1122334455667788L) ]

let test_little_endian () =
  let m = mem () in
  Mem.store_int_i64 m ~addr:0L ~size:8 0x0102030405060708L;
  check_int "low byte first" 8 (Mem.load_byte_i64 m 0L);
  check_int "high byte last" 1 (Mem.load_byte_i64 m 7L)

let test_cap_roundtrip () =
  let m = mem () in
  let c = Cap.make ~base:0x40L ~length:0x20L ~perms:Perms.read_only in
  Mem.store_cap_i64 m ~addr:64L c;
  check_bool "tag set" true (Mem.tag_at_i64 m 64L);
  let c' = Mem.load_cap_i64 m ~addr:64L in
  check_bool "roundtrip" true (Cap.equal c c')

let test_data_store_clears_tag () =
  let m = mem () in
  let c = Cap.make ~base:0x40L ~length:0x20L ~perms:Perms.all in
  Mem.store_cap_i64 m ~addr:64L c;
  (* overwrite one byte in the middle of the capability *)
  Mem.store_byte_i64 m 80L 0xff;
  check_bool "tag cleared by data store" false (Mem.tag_at_i64 m 64L);
  let c' = Mem.load_cap_i64 m ~addr:64L in
  check_bool "loaded capability untagged" false c'.Cap.tag

let test_untagged_store_of_cap () =
  let m = mem () in
  let c = Cap.clear_tag (Cap.make ~base:1L ~length:2L ~perms:Perms.all) in
  Mem.store_cap_i64 m ~addr:96L c;
  check_bool "storing untagged cap leaves tag clear" false (Mem.tag_at_i64 m 96L)

let test_tag_granularity () =
  let m = mem () in
  let c = Cap.make ~base:0L ~length:8L ~perms:Perms.all in
  Mem.store_cap_i64 m ~addr:0L c;
  Mem.store_cap_i64 m ~addr:32L c;
  check_int "two tags" 2 (Mem.count_tags m);
  (* a write in the second granule must not disturb the first *)
  Mem.store_byte_i64 m 40L 1;
  check_bool "first granule keeps its tag" true (Mem.tag_at_i64 m 0L);
  check_bool "second granule lost its tag" false (Mem.tag_at_i64 m 32L);
  check_int "one tag left" 1 (Mem.count_tags m)

let test_wide_store_clears_both_granules () =
  let m = mem () in
  let c = Cap.make ~base:0L ~length:8L ~perms:Perms.all in
  Mem.store_cap_i64 m ~addr:0L c;
  Mem.store_cap_i64 m ~addr:32L c;
  (* an 8-byte store straddling the granule boundary clears both tags *)
  Mem.store_int_i64 m ~addr:28L ~size:8 0L;
  check_int "both tags cleared" 0 (Mem.count_tags m)

let test_bus_error () =
  let m = mem () in
  Alcotest.check_raises "load beyond end" (Mem.Bus_error 4096L) (fun () ->
      ignore (Mem.load_byte_i64 m 4096L));
  Alcotest.check_raises "straddling store" (Mem.Bus_error 4092L) (fun () ->
      Mem.store_int_i64 m ~addr:4092L ~size:8 0L)

let test_misaligned_cap () =
  let m = mem () in
  Alcotest.check_raises "misaligned cap load"
    (Invalid_argument "Tagmem.load_cap: address must be capability-aligned") (fun () ->
      ignore (Mem.load_cap_i64 m ~addr:8L))

let test_iter_tagged () =
  let m = mem () in
  let c = Cap.make ~base:0L ~length:8L ~perms:Perms.all in
  Mem.store_cap_i64 m ~addr:64L c;
  Mem.store_cap_i64 m ~addr:512L c;
  let seen = ref [] in
  Mem.iter_tagged m (fun a -> seen := a :: !seen);
  Alcotest.(check (list int64)) "tagged granule addresses" [ 64L; 512L ] (List.rev !seen)

let test_custom_granule () =
  let m = Mem.create ~granule:64 ~size_bytes:4096 () in
  let c = Cap.make ~base:0L ~length:8L ~perms:Perms.all in
  Mem.store_cap_i64 m ~addr:0L c;
  (* with 64-byte granules, a data write 40 bytes in still clears the tag *)
  Mem.store_byte_i64 m 40L 1;
  check_bool "coarse granule collateral clearing" false (Mem.tag_at_i64 m 0L)

(* -- collateral tag-clear edge cases -------------------------------------- *)

let test_zero_length_write_preserves_tag () =
  let m = mem () in
  Mem.store_cap_i64 m ~addr:64L (Cap.make ~base:0L ~length:8L ~perms:Perms.all);
  (* a zero-length store touches no granule, so the §4.2 rule must not fire *)
  Mem.store_bytes_i64 m ~addr:64L Bytes.empty;
  Mem.store_bytes_i64 m ~addr:80L Bytes.empty;
  Mem.store_bytes_i64 m ~addr:95L Bytes.empty;
  check_bool "zero-length writes leave the tag" true (Mem.tag_at_i64 m 64L);
  check_int "still exactly one tag" 1 (Mem.count_tags m)

let test_bytes_write_straddling_lines () =
  let m = mem () in
  let c = Cap.make ~base:0L ~length:8L ~perms:Perms.all in
  List.iter (fun a -> Mem.store_cap_i64 m ~addr:a c) [ 0L; 32L; 64L; 96L ];
  (* a 40-byte write at 40..79 straddles the 64-byte line boundary:
     lines 32 and 64 are touched, their neighbours are not *)
  Mem.store_bytes_i64 m ~addr:40L (Bytes.make 40 'x');
  check_bool "line before the write keeps its tag" true (Mem.tag_at_i64 m 0L);
  check_bool "first straddled line cleared" false (Mem.tag_at_i64 m 32L);
  check_bool "second straddled line cleared" false (Mem.tag_at_i64 m 64L);
  check_bool "line after the write keeps its tag" true (Mem.tag_at_i64 m 96L);
  check_int "two survivors" 2 (Mem.count_tags m)

let test_one_byte_each_side_of_line_boundary () =
  let m = mem () in
  let c = Cap.make ~base:0L ~length:8L ~perms:Perms.all in
  Mem.store_cap_i64 m ~addr:0L c;
  Mem.store_cap_i64 m ~addr:32L c;
  (* the last byte of line 0 clears only line 0 *)
  Mem.store_byte_i64 m 31L 1;
  check_bool "last byte of the line clears it" false (Mem.tag_at_i64 m 0L);
  check_bool "next line untouched" true (Mem.tag_at_i64 m 32L);
  Mem.store_cap_i64 m ~addr:0L c;
  (* the first byte of line 1 clears only line 1 *)
  Mem.store_byte_i64 m 32L 1;
  check_bool "first byte of the line clears it" false (Mem.tag_at_i64 m 32L);
  check_bool "previous line untouched" true (Mem.tag_at_i64 m 0L)

let test_last_line_of_address_space () =
  let m = mem () in
  let last = Int64.of_int (4096 - 32) in
  Mem.store_cap_i64 m ~addr:last (Cap.make ~base:0L ~length:8L ~perms:Perms.all);
  check_bool "tag on the last line" true (Mem.tag_at_i64 m 4095L);
  (* the very last byte of memory still triggers the integrity rule *)
  Mem.store_byte_i64 m 4095L 0xff;
  check_bool "write to the final byte clears it" false (Mem.tag_at_i64 m last);
  Mem.store_cap_i64 m ~addr:last (Cap.make ~base:0L ~length:8L ~perms:Perms.all);
  (* a store that would run off the end faults before mutating anything *)
  Alcotest.check_raises "store past the end is rejected" (Mem.Bus_error 4092L) (fun () ->
      Mem.store_int_i64 m ~addr:4092L ~size:8 0L);
  check_bool "rejected store cleared no tag" true (Mem.tag_at_i64 m last);
  check_i64 "rejected store wrote no bytes" 0L (Mem.load_int_i64 m ~addr:4092L ~size:4)

(* -- fault-injection hooks (below-architecture mutations) ------------------- *)

let test_poke_raw_preserves_tag () =
  let m = mem () in
  let c = Cap.make ~base:0x40L ~length:0x20L ~perms:Perms.all in
  Mem.store_cap_i64 m ~addr:64L c;
  Mem.poke_raw_i64 m 72L 0xff;
  check_bool "poke_raw bypasses the integrity rule" true (Mem.tag_at_i64 m 64L);
  let c' = Mem.load_cap_i64 m ~addr:64L in
  check_bool "corrupted capability still tagged" true c'.Cap.tag;
  check_bool "but its bits changed" false (Cap.equal c c')

let test_set_tag_at_forges () =
  let m = mem () in
  Mem.store_int_i64 m ~addr:64L ~size:8 0xdeadbeefL;
  check_bool "plain data is untagged" false (Mem.tag_at_i64 m 64L);
  Mem.set_tag_at_i64 m 70L;
  check_bool "forged tag on the containing line" true (Mem.tag_at_i64 m 64L);
  let c = Mem.load_cap_i64 m ~addr:64L in
  check_bool "forged bytes now load as a tagged capability" true c.Cap.tag

let prop_data_roundtrip =
  QCheck.Test.make ~name:"store_int/load_int roundtrip (any size/addr)" ~count:500
    QCheck.(triple (int_bound 4000) (int_range 0 3) int64)
    (fun (addr, szi, v) ->
      let size = [| 1; 2; 4; 8 |].(szi) in
      let addr = Int64.of_int (min addr (4096 - size)) in
      let m = mem () in
      Mem.store_int_i64 m ~addr ~size v;
      let expected = Cheri_util.Bits.zero_extend v ~width:(size * 8) in
      Mem.load_int_i64 m ~addr ~size = expected)

let prop_any_data_write_kills_overlapping_tag =
  QCheck.Test.make ~name:"any data write into a tagged granule clears the tag" ~count:500
    QCheck.(pair (int_bound 31) (int_range 0 3))
    (fun (off, szi) ->
      let size = [| 1; 2; 4; 8 |].(szi) in
      let off = min off (32 - size) in
      let m = mem () in
      Mem.store_cap_i64 m ~addr:0L (Cap.make ~base:0L ~length:1L ~perms:Perms.all);
      Mem.store_int_i64 m ~addr:(Int64.of_int off) ~size 0L;
      not (Mem.tag_at_i64 m 0L))

let suite =
  [
    Alcotest.test_case "int roundtrip" `Quick test_int_roundtrip;
    Alcotest.test_case "little endian layout" `Quick test_little_endian;
    Alcotest.test_case "capability roundtrip" `Quick test_cap_roundtrip;
    Alcotest.test_case "data store clears tag" `Quick test_data_store_clears_tag;
    Alcotest.test_case "untagged capability store" `Quick test_untagged_store_of_cap;
    Alcotest.test_case "tag granularity" `Quick test_tag_granularity;
    Alcotest.test_case "straddling store clears both" `Quick test_wide_store_clears_both_granules;
    Alcotest.test_case "bus errors" `Quick test_bus_error;
    Alcotest.test_case "misaligned capability access" `Quick test_misaligned_cap;
    Alcotest.test_case "iter_tagged" `Quick test_iter_tagged;
    Alcotest.test_case "custom granule" `Quick test_custom_granule;
    Alcotest.test_case "zero-length write preserves tag" `Quick
      test_zero_length_write_preserves_tag;
    Alcotest.test_case "bytes write straddling lines" `Quick test_bytes_write_straddling_lines;
    Alcotest.test_case "byte each side of line boundary" `Quick
      test_one_byte_each_side_of_line_boundary;
    Alcotest.test_case "last line of address space" `Quick test_last_line_of_address_space;
    Alcotest.test_case "poke_raw preserves tag" `Quick test_poke_raw_preserves_tag;
    Alcotest.test_case "set_tag_at forges a tag" `Quick test_set_tag_at_forges;
    QCheck_alcotest.to_alcotest prop_data_roundtrip;
    QCheck_alcotest.to_alcotest prop_any_data_write_kills_overlapping_tag;
  ]
