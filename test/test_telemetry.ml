(* The observability layer: ring-buffer semantics, counter
   monotonicity, the null sink's no-op guarantee, exporter golden
   output and validity, and end-to-end agreement between the telemetry
   counters and the machine's reported outcome. *)

module T = Cheri_telemetry.Telemetry
module Machine = Cheri_isa.Machine
module Mem = Cheri_tagmem.Tagmem
module Cap = Cheri_core.Capability
module Perms = Cheri_core.Perms

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let contains_sub hay sub =
  let n = String.length sub and m = String.length hay in
  let rec go i = i + n <= m && (String.sub hay i n = sub || go (i + 1)) in
  go 0

(* -- a minimal JSON validity checker (no JSON library in the build) ----- *)

exception Bad_json of string

let validate_json (s : string) =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal w =
    String.iter (fun c -> expect c) w
  in
  let string_lit () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> fail "bad \\u escape"
              done
          | _ -> fail "bad escape");
          go ()
      | Some c when Char.code c < 0x20 -> fail "raw control char in string"
      | Some _ ->
          advance ();
          go ()
    in
    go ()
  in
  let number () =
    (match peek () with Some '-' -> advance () | _ -> ());
    let digits () =
      let saw = ref false in
      let rec go () =
        match peek () with
        | Some '0' .. '9' ->
            saw := true;
            advance ();
            go ()
        | _ -> ()
      in
      go ();
      if not !saw then fail "expected digit"
    in
    digits ();
    (match peek () with
    | Some '.' ->
        advance ();
        digits ()
    | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ()
  in
  let rec value () =
    skip_ws ();
    (match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then advance ()
        else
          let rec members () =
            skip_ws ();
            string_lit ();
            skip_ws ();
            expect ':';
            value ();
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ()
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then advance ()
        else
          let rec elements () =
            value ();
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | Some '"' -> string_lit ()
    | _ -> fail "expected a JSON value");
    skip_ws ()
  in
  value ();
  if !pos <> n then fail "trailing garbage"

let assert_valid_json what s =
  match validate_json s with
  | () -> ()
  | exception Bad_json msg -> Alcotest.failf "%s: invalid JSON (%s): %s" what msg s

(* -- sink basics --------------------------------------------------------- *)

let test_ring_wraparound () =
  let s = T.Sink.create ~capacity:4 () in
  for pc = 1 to 10 do
    T.Sink.record s ~ts:pc (T.Instret { pc; cls = T.Op_alu })
  done;
  check_int "total is monotonic, not capped" 10 (T.Sink.total_events s);
  check_int "dropped = total - capacity" 6 (T.Sink.dropped_events s);
  let evs = T.Sink.events s in
  check_int "ring holds capacity events" 4 (List.length evs);
  let pcs =
    List.map (function _, T.Instret { pc; _ } -> pc | _ -> Alcotest.fail "wrong event") evs
  in
  Alcotest.(check (list int)) "oldest first, newest last" [ 7; 8; 9; 10 ] pcs;
  (* counters survive the ring overwriting events *)
  check_int "counter saw every event" 10 (T.Sink.opcode_count s T.Op_alu)

let test_counter_monotonicity () =
  let s = T.Sink.create ~capacity:2 () in
  let snap () = (T.Sink.total_events s, T.Sink.opcode_count s T.Op_load, T.Sink.fault_count s T.F_bounds) in
  let prev = ref (snap ()) in
  let events =
    [
      T.Instret { pc = 1; cls = T.Op_load };
      T.Fault { pc = 2; kind = T.F_bounds; detail = "x" };
      T.Instret { pc = 3; cls = T.Op_load };
      T.Alloc { base = 0L; size = 8L };
      T.Free { base = 0L };
      T.Tag_clear { addr = 32L };
    ]
  in
  List.iter
    (fun ev ->
      T.Sink.record s ev;
      let now = snap () in
      let (t0, l0, f0) = !prev and (t1, l1, f1) = now in
      check_bool "counters never decrease" true (t1 > t0 && l1 >= l0 && f1 >= f0);
      prev := now)
    events;
  check_int "load count" 2 (T.Sink.opcode_count s T.Op_load);
  check_int "bounds fault count" 1 (T.Sink.fault_count s T.F_bounds);
  check_int "allocs" 1 (T.Sink.allocs s);
  check_int "frees" 1 (T.Sink.frees s);
  check_int "collateral clears" 1 (T.Sink.collateral_tag_clears s)

let test_null_sink_is_noop () =
  let s = T.Sink.null in
  check_bool "is_null" true (T.Sink.is_null s);
  T.Sink.record s (T.Instret { pc = 1; cls = T.Op_alu });
  T.Sink.record s (T.Fault { pc = 1; kind = T.F_tag; detail = "" });
  check_int "no events" 0 (T.Sink.total_events s);
  check_int "no counters" 0 (T.Sink.opcode_count s T.Op_alu);
  check_int "no fault counters" 0 (T.Sink.fault_count s T.F_tag);
  Alcotest.(check (list (pair int int))) "no hot pcs" [] (T.Sink.hot_pcs s);
  check_bool "created sinks are live" false (T.Sink.is_null (T.Sink.create ()))

let test_hot_pcs () =
  let s = T.Sink.create () in
  let hit pc times =
    for _ = 1 to times do
      T.Sink.record s (T.Instret { pc; cls = T.Op_alu })
    done
  in
  hit 5 3;
  hit 9 10;
  hit 2 7;
  Alcotest.(check (list (pair int int)))
    "sorted by count desc" [ (9, 10); (2, 7); (5, 3) ] (T.Sink.hot_pcs s);
  Alcotest.(check (list (pair int int))) "top-n limit" [ (9, 10) ] (T.Sink.hot_pcs ~n:1 s)

(* -- exporters ----------------------------------------------------------- *)

let golden_sink () =
  let s = T.Sink.create ~capacity:8 () in
  T.Sink.record s ~ts:10 (T.Instret { pc = 3; cls = T.Op_cap_load });
  T.Sink.record s ~ts:12 (T.Fault { pc = 4; kind = T.F_bounds; detail = "0x10 not in [0x0, 0x8)" });
  T.Sink.record s ~ts:14 (T.Alloc { base = 65536L; size = 32L });
  s

let test_jsonl_golden () =
  let out = T.jsonl_of_events (golden_sink ()) in
  let expected =
    "{\"ts\":10,\"ev\":\"instret\",\"args\":{\"pc\":3,\"class\":\"cap_load\"}}\n\
     {\"ts\":12,\"ev\":\"fault\",\"args\":{\"pc\":4,\"kind\":\"bounds_violation\",\"detail\":\"0x10 \
     not in [0x0, 0x8)\"}}\n\
     {\"ts\":14,\"ev\":\"alloc\",\"args\":{\"base\":65536,\"size\":32}}\n"
  in
  check_string "jsonl golden" expected out;
  List.iter
    (fun line -> if line <> "" then assert_valid_json "jsonl line" line)
    (String.split_on_char '\n' out)

let test_chrome_trace_golden () =
  let out = T.chrome_trace (golden_sink ()) in
  assert_valid_json "chrome trace" out;
  check_bool "is an array" true (out.[0] = '[');
  let contains sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length out && (String.sub out i n = sub || go (i + 1)) in
    go 0
  in
  check_bool "has metadata event" true (contains "\"ph\":\"M\"");
  check_bool "has instant events" true (contains "\"ph\":\"i\"");
  check_bool "carries the fault" true (contains "bounds_violation");
  check_bool "timestamps preserved" true (contains "\"ts\":14")

let test_snapshot_json_valid () =
  let s = T.Sink.create () in
  T.Sink.record s (T.Instret { pc = 1; cls = T.Op_alu });
  T.Sink.record s (T.Fault { pc = 1; kind = T.F_tag; detail = "quote \" and \\ backslash" });
  T.Sink.record s (T.Idiom_case { model = "CHERIv3"; idiom = "INT"; result = "(yes)" });
  assert_valid_json "snapshot json" (T.snapshot_to_json (T.snapshot s));
  (* escaping round-trips through the validator, line by line *)
  List.iter
    (fun line -> if line <> "" then assert_valid_json "escaped strings" line)
    (String.split_on_char '\n' (T.jsonl_of_events s))

(* every exporter's output must survive the repo's own strict parser,
   not just the hand-rolled validator above — the two accept slightly
   different grammars, so round-tripping through both pins the format *)
let test_exporters_strict_parse () =
  let module J = Cheri_util.Json in
  let parse_ok what s =
    match J.parse s with
    | Ok j -> j
    | Error e -> Alcotest.failf "%s: strict parser rejected (%s): %s" what e s
  in
  let s = golden_sink () in
  T.Sink.record s ~ts:16
    (T.Fault { pc = 5; kind = T.F_tag; detail = "quote \" slash \\ ctrl \x01\ttab" });
  List.iter
    (fun line ->
      if line <> "" then begin
        let j = parse_ok "jsonl line" line in
        match J.member "ev" j with
        | Some (J.Str _) -> ()
        | _ -> Alcotest.failf "jsonl line lacks ev: %s" line
      end)
    (String.split_on_char '\n' (T.jsonl_of_events s));
  (match parse_ok "chrome trace" (T.chrome_trace s) with
  | J.Arr (_ :: _) -> ()
  | _ -> Alcotest.fail "chrome trace is not a non-empty array");
  let snap = parse_ok "snapshot json" (T.snapshot_to_json (T.snapshot s)) in
  (match Option.bind (J.member "total_events" snap) J.to_int with
  | Some 4 -> ()
  | v -> Alcotest.failf "snapshot total_events wrong: %s" (match v with Some n -> string_of_int n | None -> "missing"));
  (* the telemetry escaper is (and must stay) the one in Cheri_util.Json *)
  List.iter
    (fun sample ->
      check_string "json_escape aliases Json.escape" (J.escape sample) (T.json_escape sample))
    [ "plain"; "q\"uote"; "back\\slash"; "ctl\x00\x1f\n\r\t"; "utf8 \xc3\xa9\xe2\x82\xac"; "" ]

(* -- producer integration ------------------------------------------------- *)

let test_tagmem_collateral_clears () =
  let mem = Mem.create ~size_bytes:4096 () in
  let s = T.Sink.create () in
  Mem.set_sink mem s;
  let c = Cap.make ~base:64L ~length:32L ~perms:Perms.all in
  Mem.store_cap_i64 mem ~addr:64L c;
  check_int "cap store recorded" 1 (T.Sink.tag_writes s);
  check_int "no collateral yet" 0 (T.Sink.collateral_tag_clears s);
  (* a plain data write into the capability's granule detags it *)
  Mem.store_byte_i64 mem 70L 0xff;
  check_int "collateral clear recorded" 1 (T.Sink.collateral_tag_clears s);
  (* overwriting a capability with a capability is not collateral *)
  Mem.store_cap_i64 mem ~addr:64L c;
  Mem.store_cap_i64 mem ~addr:64L c;
  check_int "cap-over-cap is not collateral" 1 (T.Sink.collateral_tag_clears s);
  (* clearing an already-clear granule records nothing *)
  Mem.store_byte_i64 mem 200L 1;
  check_int "clear of untagged granule not counted" 1 (T.Sink.collateral_tag_clears s)

let buggy_src = "int main(void) { char *p = (char *)malloc(16); p[20] = 'x'; return 0; }"

let test_machine_fault_counter_matches_outcome () =
  let abi = Cheri_compiler.Abi.Cheri Cheri_core.Cap_ops.V3 in
  let linked = Cheri_compiler.Codegen.compile_source abi buggy_src in
  let m = Cheri_compiler.Codegen.machine_for abi linked in
  let s = T.Sink.create () in
  Machine.set_sink m s;
  (match Machine.run m with
  | Machine.Trap { trap = Machine.Cap_trap f; _ } ->
      check_int "telemetry bucket matches the trap's fault" 1
        (T.Sink.fault_count s (T.fault_kind_of_cap f))
  | o -> Alcotest.failf "expected a capability trap, got %a" Machine.pp_outcome o);
  check_int "exactly one fault recorded" 1
    (List.fold_left (fun acc k -> acc + T.Sink.fault_count s k) 0 T.all_fault_kinds);
  (* the fault event is in the ring with its pretty-printed detail *)
  let fault_events =
    List.filter_map
      (function _, T.Fault { detail; _ } -> Some detail | _ -> None)
      (T.Sink.events s)
  in
  check_int "one fault event" 1 (List.length fault_events);
  check_bool "detail carries the bounds violation" true
    (contains_sub (List.hd fault_events) "bounds violation")

let test_machine_retire_counters () =
  let abi = Cheri_compiler.Abi.Cheri Cheri_core.Cap_ops.V3 in
  let linked =
    Cheri_compiler.Codegen.compile_source abi
      "int main(void) { long s = 0; for (int i = 0; i < 10; i++) s += i; return 0; }"
  in
  let m = Cheri_compiler.Codegen.machine_for abi linked in
  let s = T.Sink.create ~capacity:0 () in
  Machine.set_sink m s;
  (match Machine.run m with
  | Machine.Exit 0L -> ()
  | o -> Alcotest.failf "expected exit 0, got %a" Machine.pp_outcome o);
  let st = Machine.stats m in
  let retired =
    List.fold_left (fun acc c -> acc + T.Sink.opcode_count s c) 0 T.all_opcode_classes
  in
  check_int "one Instret event per retired instruction" st.Machine.st_instret retired;
  (* capacity 0: counters only, no buffered events, nothing dropped twice *)
  check_int "no buffered events" 0 (List.length (T.Sink.events s));
  check_bool "hot pcs populated" true (T.Sink.hot_pcs s <> [])

let test_interp_sink_events () =
  let s = T.Sink.create () in
  (match Cheri_interp.Interp.run_with Cheri_models.Registry.cheriv3 ~sink:s buggy_src with
  | Cheri_interp.Interp.Fault _ -> ()
  | o -> Alcotest.failf "expected a fault, got %a" Cheri_interp.Interp.pp_outcome o);
  check_int "model fault counted" 1 (T.Sink.fault_count s T.F_model);
  let customs =
    List.filter_map
      (function _, T.Custom { name; detail } -> Some (name, detail) | _ -> None)
      (T.Sink.events s)
  in
  check_int "one run-outcome event" 1 (List.length customs);
  check_string "tagged with the model" "interp:CHERIv3" (fst (List.hd customs))

let test_runner_failure_message_detail () =
  match Cheri_workloads.Runner.run (Cheri_compiler.Abi.Cheri Cheri_core.Cap_ops.V3) buggy_src with
  | _ -> Alcotest.fail "expected Run_failed"
  | exception Cheri_workloads.Runner.Run_failed msg ->
      let contains sub = contains_sub msg sub in
      check_bool "names the ABI" true (contains "CHERIv3");
      check_bool "carries the fault cause" true (contains "bounds violation");
      check_bool "carries the faulting pc" true (contains "pc=")

let suite =
  [
    Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
    Alcotest.test_case "counter monotonicity" `Quick test_counter_monotonicity;
    Alcotest.test_case "null sink is a no-op" `Quick test_null_sink_is_noop;
    Alcotest.test_case "hot-pc histogram" `Quick test_hot_pcs;
    Alcotest.test_case "jsonl golden output" `Quick test_jsonl_golden;
    Alcotest.test_case "chrome trace golden output" `Quick test_chrome_trace_golden;
    Alcotest.test_case "snapshot json validity" `Quick test_snapshot_json_valid;
    Alcotest.test_case "exporters pass the strict parser" `Quick test_exporters_strict_parse;
    Alcotest.test_case "tagmem collateral tag clears" `Quick test_tagmem_collateral_clears;
    Alcotest.test_case "fault counter matches machine trap" `Quick
      test_machine_fault_counter_matches_outcome;
    Alcotest.test_case "retire counters match instret" `Quick test_machine_retire_counters;
    Alcotest.test_case "interp outcome events" `Quick test_interp_sink_events;
    Alcotest.test_case "runner failure message detail" `Quick test_runner_failure_message_detail;
  ]
