(* The snapshot/restore subsystem at the library level: preemptive
   slicing and a save/load/restore round trip must be invisible to
   every observable on every ABI, damaged images must be refused with
   the right structured error (and leave the target machine untouched),
   and the deadline watchdog must sample the clock at syscall
   boundaries, not only every 32k instructions. *)

module Machine = Cheri_isa.Machine
module Abi = Cheri_compiler.Abi
module Codegen = Cheri_compiler.Codegen
module Snapshot = Cheri_snapshot.Snapshot

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* small but eventful: heap churn, stores through capabilities, output
   and syscalls, so a midpoint snapshot carries every state class *)
let src =
  {|
int main(void) {
  long *acc = (long *)malloc(8 * 32);
  long sum = 0;
  for (long r = 0; r < 40; r++) {
    long *tmp = (long *)malloc(8 * 16);
    for (long i = 0; i < 16; i++) tmp[i] = r * 31 + i;
    for (long i = 0; i < 16; i++) sum += tmp[i];
    acc[r % 32] = sum;
    free(tmp);
    if (r % 8 == 0) print_int(sum & 4095);
  }
  print_int(sum & 65535);
  return 0;
}
|}

let fresh abi = Codegen.machine_for abi (Codegen.compile_source abi src)

type obs = { o_cycles : int; o_instret : int; o_output : string }

let observe m = { o_cycles = Machine.cycles m; o_instret = Machine.instret m; o_output = Machine.output m }

let finish m =
  match Machine.run m with
  | Machine.Exit 0L -> observe m
  | o -> Alcotest.failf "unexpected outcome: %s" (Format.asprintf "%a" Machine.pp_outcome o)

let run_sliced ~slice m =
  let rec go () =
    match Machine.run ~fuel:slice ~yield:true m with
    | Machine.Yielded -> go ()
    | Machine.Exit 0L -> observe m
    | o -> Alcotest.failf "unexpected sliced outcome: %s" (Format.asprintf "%a" Machine.pp_outcome o)
  in
  go ()

let preempt_at abi ~at =
  let m = fresh abi in
  (match Machine.run ~fuel:at ~yield:true m with
  | Machine.Yielded -> ()
  | o ->
      Alcotest.failf "%s: finished (%s) before the midpoint" (Abi.name abi)
        (Format.asprintf "%a" Machine.pp_outcome o));
  m

let with_temp f =
  let path = Filename.temp_file "cheri-test-snapshot" ".snap" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path) (fun () -> f path)

let save_exn ~abi ~path m =
  match Snapshot.save ~abi ~path m with
  | Ok n -> n
  | Error e -> Alcotest.failf "save failed: %s" (Snapshot.error_to_string e)

let load_exn path =
  match Snapshot.load path with
  | Ok img -> img
  | Error e -> Alcotest.failf "load failed: %s" (Snapshot.error_to_string e)

(* -- slicing and save/restore equivalence -------------------------------------- *)

let test_sliced_equivalence () =
  List.iter
    (fun abi ->
      let reference = finish (fresh abi) in
      (* odd slice sizes land the yields at unaligned points *)
      List.iter
        (fun slice ->
          check_bool
            (Printf.sprintf "%s: slice=%d run matches flat run" (Abi.name abi) slice)
            true
            (run_sliced ~slice (fresh abi) = reference))
        [ 777; 4_096 ])
    Abi.all

let test_save_restore_roundtrip () =
  List.iter
    (fun abi ->
      let name = Abi.name abi in
      let reference = finish (fresh abi) in
      let at = reference.o_instret / 2 in
      with_temp (fun path ->
          let m1 = preempt_at abi ~at in
          let bytes = save_exn ~abi:name ~path m1 in
          check_bool (name ^ ": snapshot has a plausible size") true (bytes > 1024);
          (* the original continues unharmed by the save *)
          check_bool (name ^ ": continued-after-save matches reference") true
            (finish m1 = reference);
          let img = load_exn path in
          Alcotest.(check string) (name ^ ": image records the ABI") name (Snapshot.image_abi img);
          check_int (name ^ ": image records the preemption point") at
            (Snapshot.image_instret img);
          check_bool (name ^ ": describe is non-empty") true
            (String.length (Snapshot.describe img) > 0);
          let m2 = fresh abi in
          (match Snapshot.restore m2 ~abi:name img with
          | Ok () -> ()
          | Error e -> Alcotest.failf "%s: restore failed: %s" name (Snapshot.error_to_string e));
          check_bool (name ^ ": restored machine matches reference") true
            (finish m2 = reference)))
    Abi.all

(* -- damaged and mismatched images ---------------------------------------------- *)

let expect_error what result check =
  match result with
  | Ok _ -> Alcotest.failf "%s: expected a structured error, got success" what
  | Error e ->
      check_bool (what ^ ": error class") true (check e);
      check_bool (what ^ ": message is non-empty") true
        (String.length (Snapshot.error_to_string e) > 0)

let test_refused_images () =
  let abi = Abi.(Cheri Cheri_core.Cap_ops.V3) in
  with_temp (fun path ->
      let m = preempt_at abi ~at:5_000 in
      ignore (save_exn ~abi:(Abi.name abi) ~path m);
      let ic = open_in_bin path in
      let good = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let write_variant contents =
        let oc = open_out_bin path in
        output_string oc contents;
        close_out oc
      in
      (* truncated inside the body *)
      write_variant (String.sub good 0 (String.length good - 100));
      expect_error "truncated" (Snapshot.load path) (function
        | Snapshot.Truncated _ -> true
        | _ -> false);
      (* trailing garbage is also a length mismatch *)
      write_variant (good ^ "xx");
      expect_error "oversized" (Snapshot.load path) (function
        | Snapshot.Truncated _ -> true
        | _ -> false);
      (* same length, one flipped body byte *)
      let b = Bytes.of_string good in
      let pos = Bytes.length b - 40 in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 1));
      write_variant (Bytes.to_string b);
      expect_error "corrupt" (Snapshot.load path) (function
        | Snapshot.Crc_mismatch _ -> true
        | _ -> false);
      (* not our format at all *)
      write_variant "some other file format\nwith bytes in it";
      expect_error "alien" (Snapshot.load path) (function
        | Snapshot.Version_mismatch _ -> true
        | _ -> false);
      (* missing file: an Io error, not an exception *)
      expect_error "missing"
        (Snapshot.load (path ^ ".does-not-exist"))
        (function Snapshot.Io _ -> true | _ -> false))

(* Truncation inside the fixed-size prelude (magic, header length) must
   report [Truncated] with the byte offset — these are exactly the
   shapes a crash-during-save or a torn copy leaves behind, and the
   supervisor's recovery path keys on the error class. *)
let test_truncated_header_offsets () =
  let contains hay sub =
    let n = String.length sub and m = String.length hay in
    let rec go i = i + n <= m && (String.sub hay i n = sub || go (i + 1)) in
    go 0
  in
  let abi = Abi.(Cheri Cheri_core.Cap_ops.V3) in
  with_temp (fun path ->
      let m = preempt_at abi ~at:5_000 in
      ignore (save_exn ~abi:(Abi.name abi) ~path m);
      let ic = open_in_bin path in
      let good = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let write_variant contents =
        let oc = open_out_bin path in
        output_string oc contents;
        close_out oc
      in
      let expect_truncated what frag =
        expect_error what (Snapshot.load path) (function
          | Snapshot.Truncated msg -> contains msg frag
          | _ -> false)
      in
      (* a zero-byte file: the crash came before the first write *)
      write_variant "";
      expect_truncated "empty file" "at byte 0";
      (* cut mid-magic *)
      write_variant (String.sub good 0 3);
      expect_truncated "mid-magic" "inside the format magic at byte 3";
      (* magic intact, header-length word cut *)
      write_variant (String.sub good 0 (String.length "cheri_c.snap/v1\n" + 2));
      expect_truncated "cut header length" "before the header length";
      (* sub-magic-length bytes that are NOT a magic prefix are a
         foreign file, not our truncation *)
      write_variant "xy";
      expect_error "short alien" (Snapshot.load path) (function
        | Snapshot.Version_mismatch _ -> true
        | _ -> false))

let test_mismatch_leaves_machine_untouched () =
  let v3 = Abi.(Cheri Cheri_core.Cap_ops.V3) in
  with_temp (fun path ->
      let m = preempt_at v3 ~at:5_000 in
      ignore (save_exn ~abi:(Abi.name v3) ~path m);
      let img = load_exn path in
      (* a CHERIv3 image must refuse a MIPS machine... *)
      let mips = fresh Abi.Mips in
      expect_error "cross-ABI restore"
        (Snapshot.restore mips ~abi:(Abi.name Abi.Mips) img)
        (function Snapshot.Machine_mismatch _ -> true | _ -> false);
      (* ...and leave it pristine: it still runs exactly like a fresh one *)
      check_bool "refused machine runs on untouched" true
        (finish mips = finish (fresh Abi.Mips));
      (* same ABI, different program: the code digest refuses it *)
      let other_src = "int main(void) { print_int(7); return 0; }" in
      let other = Codegen.machine_for v3 (Codegen.compile_source v3 other_src) in
      expect_error "cross-program restore"
        (Snapshot.restore other ~abi:(Abi.name v3) img)
        (function Snapshot.Machine_mismatch _ -> true | _ -> false))

(* -- the deadline watchdog at syscall boundaries -------------------------------- *)

(* With fuel below the 32k sampling stride, the periodic check can
   never fire: an expired deadline is only noticed if the loop also
   samples the clock at syscall boundaries. The program does one early
   syscall and then spins, so the watchdog must trip just after the
   syscall — well before the fuel runs out. *)
let test_deadline_sampled_at_syscalls () =
  let spin_src =
    {|
int main(void) {
  print_int(1);
  long acc = 0;
  for (long i = 0; i < 100000; i++) acc += i;
  print_int(acc & 1023);
  return 0;
}
|}
  in
  let abi = Abi.Mips in
  let fresh_spin () = Codegen.machine_for abi (Codegen.compile_source abi spin_src) in
  (* sanity: without a deadline the budget itself is the verdict *)
  let m0 = fresh_spin () in
  check_bool "fuel alone exhausts" true (Machine.run ~fuel:10_000 m0 = Machine.Fuel_exhausted);
  check_bool "program is longer than the test fuel" true (Machine.instret m0 = 10_000);
  (* an already-expired deadline with sub-stride fuel: only the
     syscall-boundary sample can notice it *)
  let m1 = fresh_spin () in
  check_bool "expired deadline noticed at the syscall" true
    (Machine.run ~fuel:10_000 ~deadline_s:(-1.0) m1 = Machine.Deadline_exceeded);
  check_bool "watchdog fired before the fuel ran out" true (Machine.instret m1 < 10_000);
  (* in yield mode the same interruption is recoverable *)
  let m2 = fresh_spin () in
  check_bool "yield mode turns the deadline into Yielded" true
    (Machine.run ~fuel:10_000 ~deadline_s:(-1.0) ~yield:true m2 = Machine.Yielded)

let suite =
  [
    Alcotest.test_case "sliced run equals flat run (all ABIs)" `Quick test_sliced_equivalence;
    Alcotest.test_case "save/load/restore round trip (all ABIs)" `Quick
      test_save_restore_roundtrip;
    Alcotest.test_case "damaged images refused with structured errors" `Quick
      test_refused_images;
    Alcotest.test_case "truncated prelude reports byte offsets" `Quick
      test_truncated_header_offsets;
    Alcotest.test_case "mismatched restore refused, machine untouched" `Quick
      test_mismatch_leaves_machine_untouched;
    Alcotest.test_case "deadline sampled at syscall boundaries" `Quick
      test_deadline_sampled_at_syscalls;
  ]
