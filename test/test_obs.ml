(* The observability plane: registry semantics (interning, null
   registry, per-domain shard merging), histogram bucket math, span
   nesting, exporter round-trips through the strict JSON parser and a
   Prometheus line checker, the crash-safe heartbeat, and the bench
   regression gate. *)

module Obs = Cheri_obs.Obs
module BC = Cheri_obs.Bench_compare
module J = Cheri_util.Json

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let check_float = Alcotest.(check (float 1e-9))

let parse_ok what s =
  match J.parse s with
  | Ok j -> j
  | Error e -> Alcotest.failf "%s: strict parser rejected (%s): %s" what e s

let member_exn what name j =
  match J.member name j with
  | Some v -> v
  | None -> Alcotest.failf "%s: missing %S" what name

(* -- registry basics ------------------------------------------------------ *)

let test_counters_and_interning () =
  let r = Obs.create () in
  let c = Obs.counter r "requests_total" in
  Obs.Counter.incr c;
  Obs.Counter.incr ~by:41 c;
  check_int "counter accumulates" 42 (Obs.Counter.value c);
  (* interning: same name, same metric *)
  Obs.Counter.incr (Obs.counter r "requests_total");
  check_int "interned by name" 43 (Obs.Counter.value c);
  let g = Obs.gauge r "depth" in
  Obs.Gauge.set g 7.5;
  check_float "gauge holds last value" 7.5 (Obs.Gauge.value g);
  (* a name can only carry one metric type *)
  (match Obs.gauge r "requests_total" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "re-interning a counter as a gauge should raise")

let test_null_registry_is_noop () =
  check_bool "null is not live" false (Obs.is_live Obs.null);
  check_bool "create is live" true (Obs.is_live (Obs.create ()));
  check_bool "default is live" true (Obs.is_live Obs.default);
  let c = Obs.counter Obs.null "n" in
  Obs.Counter.incr ~by:100 c;
  check_int "null counter stays 0" 0 (Obs.Counter.value c);
  let h = Obs.histogram Obs.null "h" in
  Obs.Histogram.observe h 1.0;
  check_int "null histogram stays empty" 0 (Obs.Histogram.count h);
  let s = Obs.Span.enter Obs.null "x" in
  Obs.Span.exit Obs.null s;
  check_int "null span never recorded" 0 (Obs.Span.recorded Obs.null)

(* -- histogram bucket math ------------------------------------------------ *)

let test_histogram_bucket_math () =
  let r = Obs.create () in
  let h = Obs.histogram ~buckets:[| 1.; 2.; 4. |] r "lat" in
  check_float "empty quantile is nan" nan (Obs.Histogram.quantile h 0.5);
  List.iter (Obs.Histogram.observe h) [ 0.5; 1.5; 3.0; 5.0 ];
  check_int "count" 4 (Obs.Histogram.count h);
  check_float "sum" 10.0 (Obs.Histogram.sum h);
  (* one observation per bucket: the target-rank interpolation lands on
     exactly computable points, clamped by the observed min/max *)
  check_float "q0 is the observed min" 0.5 (Obs.Histogram.quantile h 0.0);
  check_float "q1 is the observed max" 5.0 (Obs.Histogram.quantile h 1.0);
  check_float "p50 at the (1,2] bucket's upper bound" 2.0 (Obs.Histogram.quantile h 0.5);
  check_float "p25 within the first bucket" 1.0 (Obs.Histogram.quantile h 0.25)

let test_quantile_of_exact () =
  check_float "empty is nan" nan (Obs.quantile_of [] 0.5);
  check_float "singleton" 7.0 (Obs.quantile_of [ 7.0 ] 0.99);
  let s = [ 4.0; 1.0; 3.0; 2.0 ] in
  check_float "p0 is min" 1.0 (Obs.quantile_of s 0.0);
  check_float "p100 is max" 4.0 (Obs.quantile_of s 1.0);
  check_float "p50 interpolates order statistics" 2.5 (Obs.quantile_of s 0.5);
  check_float "p99" 3.97 (Obs.quantile_of s 0.99)

(* -- per-domain shards ---------------------------------------------------- *)

let test_shard_merge_determinism () =
  (* the same logical work on 1 domain and on 3 domains must export
     byte-identical counters *)
  let serial = Obs.create () in
  let c = Obs.counter serial "work_total" in
  let h = Obs.histogram serial "work_seconds" in
  for _ = 1 to 300 do
    Obs.Counter.incr c;
    Obs.Histogram.observe h 0.001
  done;
  let sharded = Obs.create () in
  let worker () =
    let c = Obs.counter sharded "work_total" in
    let h = Obs.histogram sharded "work_seconds" in
    for _ = 1 to 100 do
      Obs.Counter.incr c;
      Obs.Histogram.observe h 0.001
    done
  in
  let domains = List.init 3 (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  check_int "counter merged across shards" 300
    (Obs.Counter.value (Obs.counter sharded "work_total"));
  check_int "histogram merged across shards" 300
    (Obs.Histogram.count (Obs.histogram sharded "work_seconds"));
  check_string "1-domain and 3-domain exports byte-identical"
    (Obs.to_prometheus ~timing:false serial)
    (Obs.to_prometheus ~timing:false sharded);
  check_string "jsonl too"
    (Obs.to_jsonl ~timing:false serial)
    (Obs.to_jsonl ~timing:false sharded)

(* -- spans ---------------------------------------------------------------- *)

let test_span_nesting () =
  let r = Obs.create () in
  check_bool "no current span outside with_" true (Obs.Span.current r = None);
  Obs.Span.with_ r "outer" (fun () ->
      let outer =
        match Obs.Span.current r with
        | Some s -> s
        | None -> Alcotest.fail "with_ did not set the current span"
      in
      Obs.Span.with_ r "inner" (fun () ->
          match Obs.Span.current r with
          | Some s ->
              check_bool "inner span has a fresh id" true (Obs.Span.id s <> Obs.Span.id outer)
          | None -> Alcotest.fail "nested with_ did not set the current span"));
  check_int "both spans recorded on exit" 2 (Obs.Span.recorded r);
  check_int "none dropped" 0 (Obs.Span.dropped r);
  (* the JSONL export carries the parent link *)
  let spans =
    List.filter_map
      (fun line ->
        if line = "" then None
        else
          let j = parse_ok "jsonl line" line in
          match J.member "kind" j with
          | Some (J.Str "span") -> Some j
          | _ -> None)
      (String.split_on_char '\n' (Obs.to_jsonl r))
  in
  check_int "two span lines" 2 (List.length spans);
  let find label =
    List.find
      (fun j -> J.member "label" j = Some (J.Str label))
      spans
  in
  let outer = find "outer" and inner = find "inner" in
  check_bool "outer is a root span" true (member_exn "outer" "parent" outer = J.Null);
  check_bool "inner's parent is outer" true
    (J.to_int (member_exn "inner" "parent" inner)
    = J.to_int (member_exn "outer" "id" outer))

(* -- exporters ------------------------------------------------------------ *)

let populated () =
  let r = Obs.create () in
  Obs.Counter.incr ~by:5 (Obs.counter r "tasks_total{verdict=\"detected\"}");
  Obs.Counter.incr ~by:2 (Obs.counter r "tasks_total{verdict=\"silent\"}");
  Obs.Gauge.set (Obs.gauge r "queue_depth") 3.0;
  List.iter (Obs.Histogram.observe (Obs.histogram r "task_seconds")) [ 0.01; 0.02; 0.4 ];
  Obs.Span.with_ r "campaign" (fun () -> ());
  r

let test_jsonl_roundtrip () =
  let r = populated () in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' (Obs.to_jsonl r))
  in
  check_bool "has lines" true (List.length lines >= 5);
  List.iter
    (fun line ->
      let j = parse_ok "jsonl line" line in
      match J.to_string (member_exn "line" "kind" j) with
      | Some ("counter" | "gauge" | "histogram" | "span" | "spans_dropped") -> ()
      | _ -> Alcotest.failf "unknown kind in %s" line)
    lines;
  (* timing:false restricts to counters, sorted by name *)
  let det =
    List.filter (fun l -> l <> "")
      (String.split_on_char '\n' (Obs.to_jsonl ~timing:false r))
  in
  check_int "counters only" 2 (List.length det);
  let names =
    List.map
      (fun l -> Option.get (J.to_string (member_exn "counter" "name" (parse_ok "line" l))))
      det
  in
  check_bool "sorted by name" true (names = List.sort compare names)

(* every non-comment Prometheus line must be `name[{labels}] value`
   with a well-formed metric identifier and a numeric value *)
let check_prometheus_line line =
  let fail fmt = Alcotest.failf fmt in
  if line <> "" && line.[0] <> '#' then begin
    match String.rindex_opt line ' ' with
    | None -> fail "prometheus line lacks a value: %s" line
    | Some i ->
        let name = String.sub line 0 i in
        let value = String.sub line (i + 1) (String.length line - i - 1) in
        if float_of_string_opt value = None then
          fail "prometheus value is not a number: %s" line;
        let base =
          match String.index_opt name '{' with
          | Some j ->
              if name.[String.length name - 1] <> '}' then
                fail "unterminated label set: %s" line;
              String.sub name 0 j
          | None -> name
        in
        if base = "" then fail "empty metric name: %s" line;
        String.iter
          (fun c ->
            match c with
            | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> ()
            | _ -> fail "bad character %C in metric name: %s" c line)
          base
  end

let test_prometheus_roundtrip () =
  let r = populated () in
  let out = Obs.to_prometheus r in
  List.iter check_prometheus_line (String.split_on_char '\n' out);
  let contains sub s =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  check_bool "TYPE comment uses the base name" true
    (contains "# TYPE tasks_total counter" out);
  check_bool "histogram exposes buckets" true (contains "task_seconds_bucket{le=" out);
  check_bool "+Inf bucket present" true (contains "{le=\"+Inf\"}" out);
  check_bool "histogram count series" true (contains "task_seconds_count 3" out);
  (* the +Inf bucket is cumulative: equal to _count *)
  check_bool "spans comment when timing" true (contains "# spans:" out);
  let det = Obs.to_prometheus ~timing:false r in
  List.iter check_prometheus_line (String.split_on_char '\n' det);
  check_bool "no histogram without timing" false (contains "task_seconds" det);
  check_bool "no gauge without timing" false (contains "queue_depth" det);
  check_bool "counters survive" true (contains "tasks_total{verdict=\"detected\"} 5" det)

(* -- heartbeat ------------------------------------------------------------ *)

let test_heartbeat_atomic_write () =
  let path = Filename.temp_file "obs_hb" ".json" in
  let tmp = path ^ ".tmp" in
  (* a stale temp file — as a SIGKILL mid-write leaves behind — must
     not corrupt the next write *)
  let oc = open_out_bin tmp in
  output_string oc "{\"torn\":";
  close_out oc;
  Obs.Heartbeat.write_atomic ~path "{\"ok\":true}";
  let read p =
    let ic = open_in_bin p in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  check_string "write is whole" "{\"ok\":true}" (read path);
  ignore (parse_ok "written payload" (read path));
  check_bool "no temp file left behind" false (Sys.file_exists tmp);
  Sys.remove path

let test_heartbeat_interval () =
  let path = Filename.temp_file "obs_hb" ".json" in
  let read () =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let hb = Obs.Heartbeat.create ~interval_s:3600.0 ~path () in
  check_string "path accessor" path (Obs.Heartbeat.path hb);
  Obs.Heartbeat.beat hb (fun () -> "first");
  check_string "first beat always writes" "first" (read ());
  Obs.Heartbeat.beat hb (fun () -> Alcotest.fail "payload forced inside the interval");
  check_string "interval suppresses the write" "first" (read ());
  Obs.Heartbeat.force hb (fun () -> "forced");
  check_string "force writes regardless" "forced" (read ());
  Sys.remove path

let test_heartbeat_staleness () =
  let interval = 0.5 in
  let stale ~now ~mtime =
    match Obs.Heartbeat.staleness ~interval_s:interval ~now ~mtime with
    | `Stale _ -> true
    | `Fresh -> false
  in
  check_bool "just written is fresh" false (stale ~now:100.0 ~mtime:100.0);
  check_bool "one interval old is fresh" false (stale ~now:100.5 ~mtime:100.0);
  (* the supervisor's probe contract: exactly 2x the interval is still
     fresh — a beat that lands at the wire is not a death sentence *)
  check_bool "exactly 2x interval is still fresh" false (stale ~now:101.0 ~mtime:100.0);
  check_bool "just beyond 2x interval is stale" true (stale ~now:101.0001 ~mtime:100.0);
  (match Obs.Heartbeat.staleness ~interval_s:interval ~now:103.0 ~mtime:100.0 with
  | `Stale age -> check_float "staleness reports the age" 3.0 age
  | `Fresh -> Alcotest.fail "3s-old file under a 0.5s interval must be stale");
  (* clock skew: a writer on a faster clock produces an mtime in the
     probe's future; a negative age must read as fresh, never stale *)
  check_bool "future mtime (clock skew) is fresh" false (stale ~now:100.0 ~mtime:105.0)

let test_heartbeat_probe () =
  let path = Filename.temp_file "obs_probe" ".json" in
  let missing = path ^ ".does-not-exist" in
  check_bool "missing file probes `Missing" true
    (Obs.Heartbeat.probe ~interval_s:1.0 missing = `Missing);
  let mtime = (Unix.stat path).Unix.st_mtime in
  check_bool "fresh file probes `Fresh" true
    (Obs.Heartbeat.probe ~now:mtime ~interval_s:1.0 path = `Fresh);
  check_bool "aged file probes `Stale" true
    (match Obs.Heartbeat.probe ~now:(mtime +. 2.5) ~interval_s:1.0 path with
    | `Stale _ -> true
    | `Fresh | `Missing -> false);
  Sys.remove path

let test_status_json () =
  let j =
    parse_ok "status"
      (Obs.status_json
         ~verdicts:[ ("detected", 3); ("silent", 1) ]
         ~p99_task_s:0.25 ~tasks_done:4 ~tasks_total:16 ~elapsed_s:8.0 ())
  in
  check_bool "schema" true (J.member "schema" j = Some (J.Str "cheri_c.status/v1"));
  check_int "tasks_done" 4 (Option.get (J.to_int (member_exn "status" "tasks_done" j)));
  check_int "tasks_total" 16 (Option.get (J.to_int (member_exn "status" "tasks_total" j)));
  (* rate so far: 4 tasks in 8s -> 2s/task -> 12 remaining = 24s *)
  check_float "eta from the observed rate" 24.0
    (Option.get (J.to_float (member_exn "status" "eta_s" j)));
  let verdicts = member_exn "status" "verdicts" j in
  check_int "verdict carried" 3
    (Option.get (J.to_int (member_exn "status" "detected" verdicts)));
  (* no progress yet: the ETA is unknowable, not infinite *)
  let early = parse_ok "early" (Obs.status_json ~tasks_done:0 ~tasks_total:5 ~elapsed_s:1.0 ()) in
  check_bool "eta null before the first task" true (member_exn "early" "eta_s" early = J.Null);
  let done_ = parse_ok "done" (Obs.status_json ~tasks_done:5 ~tasks_total:5 ~elapsed_s:9.0 ()) in
  check_float "eta 0 when complete" 0.0
    (Option.get (J.to_float (member_exn "done" "eta_s" done_)))

(* -- the bench regression gate -------------------------------------------- *)

let bench_file cycles =
  Printf.sprintf
    {|{"schema":"cheri_c.bench/v1","results":[
  {"workload":"dhry","abi":"A","cycles":%d,"instret":1000},
  {"workload":"zlib","abi":"A","cycles":5000,"instret":2000}
]}|}
    cycles

let diff_exn ?threshold_pct ?quick old_json new_json =
  match BC.diff ?threshold_pct ?quick ~old_json ~new_json () with
  | Ok o -> o
  | Error e -> Alcotest.failf "diff failed: %s" e

let test_compare_thresholds () =
  let o = diff_exn (bench_file 1000) (bench_file 1000) in
  check_bool "identical files pass" false o.BC.o_regressed;
  check_int "both cells, both metrics gated" 4 (List.length o.BC.o_metrics);
  (* +9% stays under the default 10% threshold; +20% trips it *)
  check_bool "9% within threshold" false (diff_exn (bench_file 1000) (bench_file 1090)).BC.o_regressed;
  let worse = diff_exn (bench_file 1000) (bench_file 1200) in
  check_bool "20% regresses" true worse.BC.o_regressed;
  let m =
    List.find (fun m -> m.BC.m_cell = "dhry/A" && m.BC.m_name = "cycles") worse.BC.o_metrics
  in
  check_float "signed delta, positive = worse" 20.0 m.BC.m_delta_pct;
  check_bool "improvement never regresses" false
    (diff_exn (bench_file 1000) (bench_file 500)).BC.o_regressed;
  (* a tighter threshold bites on the 9% drift *)
  check_bool "custom threshold" true
    (diff_exn ~threshold_pct:5.0 (bench_file 1000) (bench_file 1090)).BC.o_regressed

let test_compare_missing_and_mismatch () =
  let small =
    {|{"schema":"cheri_c.bench/v2","results":[{"workload":"dhry","abi":"A","cycles":1000,"instret":1000}]}|}
  in
  (* a cell that vanished is a regression — unless --quick, which gates
     only the intersection (for comparing against an older, smaller sweep) *)
  let o = diff_exn (bench_file 1000) small in
  check_bool "missing cell regresses" true o.BC.o_regressed;
  check_bool "missing cell named" true (List.mem "zlib/A" o.BC.o_missing);
  check_bool "quick ignores missing" false
    (diff_exn ~quick:true (bench_file 1000) small).BC.o_regressed;
  (* v1 vs v2 of one family is fine (asserted above); families must match *)
  let perf = {|{"schema":"cheri_c.bench-perf/v1","results":[]}|} in
  (match BC.diff ~old_json:(bench_file 1000) ~new_json:perf () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "family mismatch accepted");
  (match BC.diff ~old_json:"{not json" ~new_json:"{}" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed JSON accepted");
  (match BC.diff ~old_json:{|{"schema":"cheri_c.weird/v1"}|} ~new_json:{|{"schema":"cheri_c.weird/v1"}|} () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown family accepted")

let test_compare_doctor_worsen () =
  let old_json = bench_file 1000 in
  let doctored =
    match BC.doctor_worsen old_json with
    | Ok s -> s
    | Error e -> Alcotest.failf "doctor_worsen failed: %s" e
  in
  ignore (parse_ok "doctored report" doctored);
  let o = diff_exn old_json doctored in
  check_bool "synthetic regression flagged" true o.BC.o_regressed;
  check_bool "every gated metric regressed" true
    (List.for_all (fun m -> m.BC.m_regressed) o.BC.o_metrics)

let suite =
  [
    Alcotest.test_case "counters, gauges, interning" `Quick test_counters_and_interning;
    Alcotest.test_case "null registry is a no-op" `Quick test_null_registry_is_noop;
    Alcotest.test_case "histogram bucket math" `Quick test_histogram_bucket_math;
    Alcotest.test_case "exact sample quantiles" `Quick test_quantile_of_exact;
    Alcotest.test_case "shard merge is jobs-deterministic" `Quick test_shard_merge_determinism;
    Alcotest.test_case "span nesting and parent links" `Quick test_span_nesting;
    Alcotest.test_case "jsonl export round-trips" `Quick test_jsonl_roundtrip;
    Alcotest.test_case "prometheus export line-valid" `Quick test_prometheus_roundtrip;
    Alcotest.test_case "heartbeat atomic write" `Quick test_heartbeat_atomic_write;
    Alcotest.test_case "heartbeat interval + force" `Quick test_heartbeat_interval;
    Alcotest.test_case "heartbeat staleness boundaries + clock skew" `Quick
      test_heartbeat_staleness;
    Alcotest.test_case "heartbeat probe on real files" `Quick test_heartbeat_probe;
    Alcotest.test_case "status payload" `Quick test_status_json;
    Alcotest.test_case "compare thresholds" `Quick test_compare_thresholds;
    Alcotest.test_case "compare missing cells + mismatches" `Quick
      test_compare_missing_and_mismatch;
    Alcotest.test_case "compare gate bites on doctored report" `Quick
      test_compare_doctor_worsen;
  ]
