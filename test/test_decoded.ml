(* The decode stage: Decoded.compile must be a pure, semantics-neutral
   re-encoding of the instruction stream. The properties run generated
   mini-C programs through two independently decoded copies of the same
   image and through the interpreter reference, and the unit tests pin
   the decode-time rejection of code the table cannot represent
   (unresolved symbols, out-of-range register operands). *)

module I = Cheri_isa.Insn
module Decoded = Cheri_isa.Decoded
module Machine = Cheri_isa.Machine
module Abi = Cheri_compiler.Abi
module Codegen = Cheri_compiler.Codegen
module Gen = Cheri_fuzz.Gen
module Campaign = Cheri_fuzz.Campaign

let abis = Abi.[ Mips; Cheri Cheri_core.Cap_ops.V2; Cheri Cheri_core.Cap_ops.V3 ]

(* fuel bound: generated programs can loop; the property only asserts
   that both copies stop the same way, exhaustion included *)
let fuel = 2_000_000

let run_compiled abi linked =
  let m = Codegen.machine_for abi linked in
  let outcome = Machine.run ~fuel m in
  let st = Machine.stats m in
  (Format.asprintf "%a" Machine.pp_outcome outcome,
   Machine.output m, st.Machine.st_cycles, st.Machine.st_instret)

(* Two machines built from two independent Decoded.compile runs of the
   same linked image must execute identically: outcome, output bytes,
   cycle count and retired-instruction count. *)
let prop_decode_deterministic =
  QCheck.Test.make ~name:"decode: independent compiles execute identically" ~count:20
    QCheck.(int_bound 10_000)
    (fun seed ->
      let src = Gen.source ~seed in
      List.for_all
        (fun abi ->
          match Codegen.compile_source abi src with
          | exception Abi.Unsupported _ -> true (* e.g. pointer diff under V2 *)
          | linked -> run_compiled abi linked = run_compiled abi linked)
        abis)

(* Decode bookkeeping: the table remembers its source verbatim, keeps
   one row per instruction, classifies rows exactly as the undecoded
   stream would, and hashes to the pre-decode digest. *)
let prop_decode_bookkeeping =
  QCheck.Test.make ~name:"decode: source/length/class/digest preserved" ~count:20
    QCheck.(int_bound 10_000)
    (fun seed ->
      let src = Gen.source ~seed in
      List.for_all
        (fun abi ->
          match Codegen.compile_source abi src with
          | exception Abi.Unsupported _ -> true
          | linked ->
              let code = linked.Cheri_asm.Asm.code in
              let p = Decoded.compile code in
              let name = Abi.name abi in
              Decoded.source p == code
              && Decoded.length p = Array.length code
              && Decoded.digest ~abi:name p = Decoded.source_digest ~abi:name code
              && Array.for_all
                   (fun i -> Decoded.telemetry_class p i = I.telemetry_class code.(i))
                   (Array.init (Array.length code) Fun.id))
        abis)

(* The end-to-end semantics check: the softcore (which executes only
   through the decoded table) must agree with the interpreter reference
   model, which never touches Decoded. *)
let prop_decode_agrees_with_interpreter =
  let interp =
    match Cheri_models.Registry.lookup "cheriv3" with
    | Some e -> Campaign.interp_impl e
    | None -> failwith "registry lost the cheriv3 model"
  in
  let softcore = Campaign.compiled_impl (Abi.Cheri Cheri_core.Cap_ops.V3) in
  QCheck.Test.make ~name:"decode: softcore agrees with interpreter reference" ~count:10
    QCheck.(int_bound 10_000)
    (fun seed ->
      not (Campaign.divergent (Campaign.run_impls [ interp; softcore ] (Gen.source ~seed))))

(* -- decode-time rejection ------------------------------------------------ *)

let expect_invalid name code =
  match Decoded.compile code with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: unresolvable code accepted by Decoded.compile" name

let test_rejects_unresolved_branch () =
  expect_invalid "J" [| I.J (I.Sym "loop") |];
  expect_invalid "Branch" [| I.Branch (I.EQ, 1, 2, I.Sym "skip") |];
  expect_invalid "Branchz" [| I.Branchz (I.LTZ, 1, I.Sym "skip") |];
  expect_invalid "Jal" [| I.Jal (I.Sym "fn") |]

let test_rejects_unresolved_immediate () =
  expect_invalid "Li" [| I.Li (8, I.Sym_addr ("v", 0L)) |];
  expect_invalid "Alui" [| I.Alui (I.ADD, 8, 8, I.Sym_addr ("v", 8L)) |]

let test_rejects_register_out_of_range () =
  expect_invalid "rd" [| I.Alu (I.ADD, 32, 0, 0) |];
  expect_invalid "rs" [| I.Alu (I.ADD, 1, -1, 0) |];
  expect_invalid "cap" [| I.Cgettag (1, 64) |]

let test_create_code_rejects_unresolved () =
  match
    Machine.create_code (Machine.default_config Cheri_core.Cap_ops.V3)
      ~code:[| I.J (I.Sym "x") |]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "Machine.create_code accepted unresolved code"

let suite =
  [
    QCheck_alcotest.to_alcotest prop_decode_deterministic;
    QCheck_alcotest.to_alcotest prop_decode_bookkeeping;
    QCheck_alcotest.to_alcotest prop_decode_agrees_with_interpreter;
    Alcotest.test_case "rejects unresolved branch targets" `Quick
      test_rejects_unresolved_branch;
    Alcotest.test_case "rejects unresolved immediates" `Quick
      test_rejects_unresolved_immediate;
    Alcotest.test_case "rejects register operands outside 0..31" `Quick
      test_rejects_register_out_of_range;
    Alcotest.test_case "create_code rejects unresolved code" `Quick
      test_create_code_rejects_unresolved;
  ]
