(* Cross-cutting property tests: the machine allocator, the cache
   model, the flat heap, and capability encoding invariants. *)

module I = Cheri_isa.Insn
module Machine = Cheri_isa.Machine
module Cache = Cheri_isa.Cache
module Asm = Cheri_asm.Asm
module FH = Cheri_models.Flat_heap
module Cap = Cheri_core.Capability
module Perms = Cheri_core.Perms

(* -- machine allocator ---------------------------------------------------- *)

(* The allocator property runs a generated program: N mallocs of random
   sizes, storing each base into an array, then checking alignment and
   pairwise disjointness in-program. *)
let allocator_program sizes =
  let n = List.length sizes in
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "int main(void) {\n  long base[%d];\n  long len[%d];\n" n n);
  List.iteri
    (fun i size ->
      Buffer.add_string buf
        (Printf.sprintf "  base[%d] = (long)malloc(%d); len[%d] = %d;\n" i size i size))
    sizes;
  Buffer.add_string buf
    (Printf.sprintf
       {|
  for (int i = 0; i < %d; i++) {
    if (base[i] %% 32 != 0) return 1;             /* alignment */
    for (int j = 0; j < %d; j++) {
      if (i != j) {
        if (base[i] < base[j] + len[j] && base[j] < base[i] + len[i]) return 2;  /* overlap */
      }
    }
  }
  return 0;
}
|}
       n n);
  Buffer.contents buf

let prop_allocator_disjoint =
  QCheck.Test.make ~name:"allocator blocks aligned and pairwise disjoint" ~count:30
    QCheck.(list_of_size (Gen.int_range 2 12) (int_range 1 400))
    (fun sizes ->
      match Cheri_compiler.Codegen.run Cheri_compiler.Abi.Mips (allocator_program sizes) with
      | Machine.Exit 0L, _ -> true
      | _ -> false)

(* -- cache model ----------------------------------------------------------- *)

let prop_cache_hit_after_access =
  QCheck.Test.make ~name:"cache: immediate re-access hits" ~count:200
    QCheck.(int_bound 0xfffff)
    (fun addr ->
      let c = Cache.create ~name:"t" ~size_bytes:4096 ~ways:2 ~line_bytes:32 in
      ignore (Cache.access c (Int64.of_int addr));
      Cache.access c (Int64.of_int addr))

let prop_cache_lru =
  QCheck.Test.make ~name:"cache: LRU victim is evicted first" ~count:100
    QCheck.(int_bound 255)
    (fun set ->
      (* direct-mapped-per-way exercise: 2-way cache, fill a set with two
         lines, touch the first, insert a third: the second must be gone *)
      let c = Cache.create ~name:"t" ~size_bytes:(256 * 2 * 32) ~ways:2 ~line_bytes:32 in
      let addr k = Int64.of_int ((k * 256 * 32) + (set * 32)) in
      ignore (Cache.access c (addr 0));
      ignore (Cache.access c (addr 1));
      ignore (Cache.access c (addr 0));
      (* touch 0: 1 becomes LRU *)
      ignore (Cache.access c (addr 2));
      (* evicts 1 *)
      Cache.access c (addr 0) && not (Cache.access c (addr 1)))

let prop_cache_stats_consistent =
  QCheck.Test.make ~name:"cache: hits + misses = accesses" ~count:60
    QCheck.(list_of_size (Gen.int_range 1 200) (int_bound 0xffff))
    (fun addrs ->
      let c = Cache.create ~name:"t" ~size_bytes:2048 ~ways:4 ~line_bytes:32 in
      List.iter (fun a -> ignore (Cache.access c (Int64.of_int a))) addrs;
      Cache.hits c + Cache.misses c = List.length addrs)

(* -- flat heap -------------------------------------------------------------- *)

let prop_flat_heap_find =
  QCheck.Test.make ~name:"flat heap: find locates every allocated byte" ~count:60
    QCheck.(list_of_size (Gen.int_range 1 30) (int_range 1 200))
    (fun sizes ->
      let h = FH.create () in
      let objs = List.map (fun s -> FH.alloc h ~size:(Int64.of_int s) ~const:false) sizes in
      List.for_all
        (fun (o : FH.obj) ->
          let mid = Int64.add o.FH.vbase (Int64.div o.FH.size 2L) in
          match FH.find h mid with Some o' -> o'.FH.id = o.FH.id | None -> false)
        objs)

let prop_flat_heap_guard_gaps =
  QCheck.Test.make ~name:"flat heap: objects never contiguous (guard gaps)" ~count:60
    QCheck.(list_of_size (Gen.int_range 2 20) (int_range 1 100))
    (fun sizes ->
      let h = FH.create () in
      let objs = List.map (fun s -> FH.alloc h ~size:(Int64.of_int s) ~const:false) sizes in
      let sorted = List.sort (fun (a : FH.obj) b -> compare a.FH.vbase b.FH.vbase) objs in
      let rec check = function
        | (a : FH.obj) :: (b : FH.obj) :: rest ->
            Int64.add a.FH.vbase a.FH.size < b.FH.vbase && check (b :: rest)
        | _ -> true
      in
      check sorted)

(* -- capability encoding ----------------------------------------------------- *)

let arbitrary_perm_bits = QCheck.map (fun b -> Perms.of_bits (Int64.of_int (b land 0xff))) QCheck.(int_bound 255)

let prop_sealed_roundtrip =
  QCheck.Test.make ~name:"sealed capabilities roundtrip through the 256-bit encoding" ~count:200
    QCheck.(triple (pair (int_bound 1_000_000) (int_bound 100_000)) (int_bound 0xffff) arbitrary_perm_bits)
    (fun ((base, len), otype, perms) ->
      let c = Cap.make ~base:(Int64.of_int base) ~length:(Int64.of_int len) ~perms in
      let sealed = Cap.seal_unchecked c ~otype:(Int64.of_int otype) in
      Cap.equal sealed (Cap.of_words ~tag:true (Cap.to_words sealed)))

let prop_tagmem_cap_roundtrip_random =
  QCheck.Test.make ~name:"tagmem: random capabilities roundtrip with tags" ~count:200
    QCheck.(pair (int_bound 100) (pair (int_bound 1_000_000) (int_bound 100_000)))
    (fun (slot, (base, len)) ->
      let mem = Cheri_tagmem.Tagmem.create ~size_bytes:8192 () in
      let addr = Int64.of_int (slot * 32) in
      let c = Cap.make ~base:(Int64.of_int base) ~length:(Int64.of_int len) ~perms:Perms.all in
      Cheri_tagmem.Tagmem.store_cap_i64 mem ~addr c;
      Cap.equal c (Cheri_tagmem.Tagmem.load_cap_i64 mem ~addr))

(* -- snapshot serialization --------------------------------------------------- *)

module Snapshot = Cheri_snapshot.Snapshot

(* a run preempted here has live heap, caches, output and tag bits *)
let snap_src =
  {|
int main(void) {
  long *p = (long *)malloc(8 * 64);
  long **q = (long **)malloc(8 * 8);
  long acc = 0;
  for (long r = 0; r < 200; r++) {
    for (long i = 0; i < 64; i++) { p[i] = acc + i * 17; acc += p[i]; }
    q[r % 8] = p + (r % 64);
    if (r % 50 == 0) print_int(acc & 255);
  }
  print_int(acc & 65535);
  return 0;
}
|}

let snap_linked =
  lazy
    (let abi = Cheri_compiler.Abi.(Cheri Cheri_core.Cap_ops.V3) in
     (abi, Cheri_compiler.Codegen.compile_source abi snap_src))

(* splitmix64: all the perturbation entropy flows from the qcheck seed *)
let sm64 st =
  let open Int64 in
  st := add !st 0x9e3779b97f4a7c15L;
  let z = !st in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

(* The file format must be the identity on *any* machine state — not
   just states a legal run can reach. Preempt a real run (live heap
   pages, caches, tag bits), then overwrite every register, capability
   and counter with arbitrary values: capabilities with overflowing
   bounds, sealed-but-untagged combinations, 64-bit otypes. A
   save/load/restore trip into a fresh machine must reproduce the
   Snap record field for field. *)
let prop_snapshot_roundtrip =
  QCheck.Test.make ~name:"snapshot: save/load/restore is the identity on machine state"
    ~count:20
    QCheck.(int_bound 0x3fffffff)
    (fun seed ->
      let abi, linked = Lazy.force snap_linked in
      let m = Cheri_compiler.Codegen.machine_for abi linked in
      (match Machine.run ~fuel:3_000 ~yield:true m with
      | Machine.Yielded -> ()
      | _ -> failwith "snapshot property: program shorter than the preemption point");
      let s = Machine.snapshot m in
      let st = ref (Int64.of_int seed) in
      let next () = sm64 st in
      let bit () = Int64.logand (next ()) 1L = 1L in
      let nat () = Int64.to_int (Int64.logand (next ()) 0x3fffffffL) in
      let cap () =
        Cap.of_fields_unchecked ~tag:(bit ()) ~base:(next ()) ~length:(next ())
          ~offset:(next ())
          ~perms:(Perms.of_bits_int (Int64.to_int (Int64.logand (next ()) 0xffL)))
          ~sealed:(bit ()) ~otype:(next ())
      in
      let gprs = Bytes.create (33 * 8) in
      for i = 0 to 32 do
        Bytes.set_int64_le gprs (i * 8) (next ())
      done;
      let output =
        String.init (nat () mod 200) (fun _ -> Char.chr (Int64.to_int (Int64.logand (next ()) 0xffL)))
      in
      let opt () = if bit () then Some (nat ()) else None in
      let s' =
        {
          s with
          Machine.Snap.s_gprs = Bytes.to_string gprs;
          s_caps = Array.init 32 (fun _ -> cap ());
          s_pcc = cap ();
          s_pc = nat ();
          s_cycles = nat ();
          s_instret = nat ();
          s_loads = nat ();
          s_stores = nat ();
          s_cap_loads = nat ();
          s_cap_stores = nat ();
          s_heap_allocated = Int64.logand (next ()) 0xffffffffL;
          s_allocs = nat ();
          s_frees = nat ();
          s_syscalls = nat ();
          s_alloc_fail_after = opt ();
          s_free_fail_after = opt ();
          s_output = output;
        }
      in
      Machine.restore m s';
      let path = Filename.temp_file "cheri-prop-snap" ".snap" in
      Fun.protect
        ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
        (fun () ->
          (match Snapshot.save ~abi:(Cheri_compiler.Abi.name abi) ~path m with
          | Ok _ -> ()
          | Error e -> failwith (Snapshot.error_to_string e));
          let img =
            match Snapshot.load path with
            | Ok img -> img
            | Error e -> failwith (Snapshot.error_to_string e)
          in
          let m2 = Cheri_compiler.Codegen.machine_for abi linked in
          (match Snapshot.restore m2 ~abi:(Cheri_compiler.Abi.name abi) img with
          | Ok () -> ()
          | Error e -> failwith (Snapshot.error_to_string e));
          Machine.snapshot m2 = s'))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_allocator_disjoint;
    QCheck_alcotest.to_alcotest prop_cache_hit_after_access;
    QCheck_alcotest.to_alcotest prop_cache_lru;
    QCheck_alcotest.to_alcotest prop_cache_stats_consistent;
    QCheck_alcotest.to_alcotest prop_flat_heap_find;
    QCheck_alcotest.to_alcotest prop_flat_heap_guard_gaps;
    QCheck_alcotest.to_alcotest prop_sealed_roundtrip;
    QCheck_alcotest.to_alcotest prop_tagmem_cap_roundtrip_random;
    QCheck_alcotest.to_alcotest prop_snapshot_roundtrip;
  ]

