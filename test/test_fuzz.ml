(* Differential fuzzing: randomly generated well-defined programs must
   behave identically under every pointer model (abstract machine) and
   every ABI (compiled to the softcore). This is the strongest
   cross-check in the repository: ten implementations of the C
   abstract machine executing the same program.

   The generator and campaign runner live in lib/fuzz (cheri_fuzz);
   each batch here is one seeded campaign fanned over the domain pool,
   failing with the full reproducer dump on any divergence. *)

module Campaign = Cheri_fuzz.Campaign

let campaign_batch first_seed seeds () =
  let r = Campaign.run ~jobs:2 ~shrink:true ~first_seed ~seeds () in
  List.iter
    (fun (seed, exn) -> Alcotest.failf "seed %d: harness error: %s" seed exn)
    r.Campaign.errors;
  match r.Campaign.divergences with
  | [] -> ()
  | d :: _ -> Alcotest.failf "%s" (Format.asprintf "%a" Campaign.pp_divergence d)

let suite =
  [
    Alcotest.test_case "differential fuzz campaign (seeds 0-14)" `Slow (campaign_batch 0 15);
    Alcotest.test_case "differential fuzz campaign (seeds 15-29)" `Slow (campaign_batch 15 15);
    Alcotest.test_case "differential fuzz campaign (seeds 30-44)" `Slow (campaign_batch 30 15);
  ]
