(* The multi-tenant service's pure pieces: wire framing, admission
   control, and the checkpoint/config/assignment JSON round trips. The
   process-level behavior (worker SIGKILL, heartbeat reaping,
   checkpoint corruption) is covered by the cheri-serve --chaos rule
   in bin/dune. *)

module Protocol = Cheri_service.Protocol
module Admission = Cheri_service.Admission
module Service = Cheri_service.Service
module Json = Cheri_util.Json

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* -- protocol framing --------------------------------------------------------- *)

let test_frame_roundtrip () =
  let payloads = [ ""; "x"; "{\"op\":\"submit\"}"; String.make 100_000 'z'; "a\nb\nc\n" ] in
  let r = Protocol.Reader.create () in
  List.iter (fun p -> Protocol.Reader.feed r (Protocol.encode p)) payloads;
  List.iter
    (fun p ->
      match Protocol.Reader.next r with
      | `Frame got -> check_string "frame payload survives" p got
      | `Awaiting -> Alcotest.fail "complete frame reported as awaiting"
      | `Corrupt m -> Alcotest.failf "valid frame reported corrupt: %s" m)
    payloads;
  check_bool "drained reader awaits" true (Protocol.Reader.next r = `Awaiting)

let test_frame_split_feeds () =
  (* bytes arriving one at a time across reads must reassemble *)
  let p = "{\"op\":\"poll\",\"tenant\":3}" in
  let framed = Protocol.encode p in
  let r = Protocol.Reader.create () in
  String.iter
    (fun c ->
      check_bool "no frame before the last byte" true (Protocol.Reader.next r = `Awaiting);
      Protocol.Reader.feed r (String.make 1 c))
    (String.sub framed 0 (String.length framed - 1));
  Protocol.Reader.feed r (String.make 1 framed.[String.length framed - 1]);
  check_bool "frame completes on the last byte" true (Protocol.Reader.next r = `Frame p)

let test_frame_corrupt_header () =
  let r = Protocol.Reader.create () in
  Protocol.Reader.feed r "not a hex header, definitely";
  (match Protocol.Reader.next r with
  | `Corrupt _ -> ()
  | `Frame _ | `Awaiting -> Alcotest.fail "garbage header must read as corrupt");
  (* a torn header (shorter than 9 bytes) is awaiting, not corrupt:
     that is what a SIGKILLed writer's last frame looks like *)
  let r2 = Protocol.Reader.create () in
  Protocol.Reader.feed r2 "0000";
  check_bool "torn header awaits" true (Protocol.Reader.next r2 = `Awaiting)

let test_frame_oversize_refused () =
  let r = Protocol.Reader.create () in
  Protocol.Reader.feed r "7fffffff\n";
  match Protocol.Reader.next r with
  | `Corrupt m -> check_bool "mentions the limit" true (String.length m > 0)
  | `Frame _ | `Awaiting -> Alcotest.fail "a 2 GiB length must be refused, not buffered"

(* -- admission control -------------------------------------------------------- *)

let test_admission_capacity () =
  let a = Admission.create ~capacity:3 () in
  let admits = List.init 3 (fun _ -> Admission.request a) in
  check_bool "under capacity admits" true
    (List.for_all (function Admission.Admit -> true | _ -> false) admits);
  check_int "live tracks admits" 3 (Admission.live a);
  (match Admission.request a with
  | Admission.Admit -> Alcotest.fail "fourth tenant admitted over a capacity of 3"
  | Admission.Reject { retry_after_s } ->
      check_bool "hint is positive" true (retry_after_s > 0.0));
  check_int "rejection does not take a slot" 3 (Admission.live a);
  Admission.release a;
  (match Admission.request a with
  | Admission.Admit -> ()
  | Admission.Reject _ -> Alcotest.fail "freed slot not readmitted");
  check_int "admitted total" 4 (Admission.admitted a);
  check_int "rejected total" 1 (Admission.rejected a)

let test_admission_hints_stretch_and_reset () =
  let hints seed =
    let a = Admission.create ~seed ~capacity:1 () in
    ignore (Admission.request a);
    List.init 6 (fun _ ->
        match Admission.request a with
        | Admission.Reject { retry_after_s } -> retry_after_s
        | Admission.Admit -> Alcotest.fail "admitted over capacity")
  in
  let h = hints 7 in
  check_bool "hints grow under a sustained rejection streak" true
    (List.nth h 5 > List.nth h 0);
  check_bool "hints are reproducible for a seed" true (hints 7 = h);
  check_bool "hints de-synchronize across seeds" true (hints 8 <> h);
  (* an admit resets the streak: the next rejection snaps back *)
  let a = Admission.create ~seed:7 ~capacity:1 () in
  ignore (Admission.request a);
  let first =
    match Admission.request a with
    | Admission.Reject { retry_after_s } -> retry_after_s
    | Admission.Admit -> Alcotest.fail "admitted over capacity"
  in
  for _ = 1 to 5 do ignore (Admission.request a) done;
  Admission.release a;
  ignore (Admission.request a) (* admit: resets the streak *);
  let after_reset =
    match Admission.request a with
    | Admission.Reject { retry_after_s } -> retry_after_s
    | Admission.Admit -> Alcotest.fail "admitted over capacity"
  in
  check_bool "streak resets after an admit" true (after_reset = first)

(* -- wire round trips --------------------------------------------------------- *)

let test_config_roundtrip () =
  let c =
    {
      (Service.default_config ~dir:"/tmp/x") with
      Service.workers = 5;
      capacity = 9;
      heartbeat_s = 0.125;
      corrupt_requeue = 2;
    }
  in
  match Service.config_of_json (Service.config_to_json c) with
  | Error e -> Alcotest.failf "config round trip: %s" e
  | Ok c' -> check_bool "config survives the JSON round trip" true (c = c')

let test_assignment_roundtrip () =
  let a =
    {
      Service.a_tenant = 12;
      a_source = "int main(void) { return 0; }\n";
      a_abi = "CHERIv3";
      a_fuel = 1_000_000;
      a_slice = 10_000;
      a_deadline_s = Some 2.5;
      a_restarts = 3;
    }
  in
  match Service.assignment_of_json (Service.assignment_to_json a) with
  | Error e -> Alcotest.failf "assignment round trip: %s" e
  | Ok a' -> check_bool "assignment survives the JSON round trip" true (a = a')

let test_checkpoint_note () =
  let note = Service.Checkpoint.note ~tenant:7 ~slices:42 ~wall_s:1.5 ~resumed:true ~scratch:false in
  (match Service.Checkpoint.parse_note note with
  | Error e -> Alcotest.failf "note round trip: %s" e
  | Ok ck ->
      check_int "tenant" 7 ck.Service.Checkpoint.ck_tenant;
      check_int "slices" 42 ck.Service.Checkpoint.ck_slices;
      check_bool "resumed flag is lineage-cumulative" true ck.Service.Checkpoint.ck_resumed;
      check_bool "scratch flag" false ck.Service.Checkpoint.ck_scratch);
  (* a foreign note schema must be refused, not misread *)
  match Service.Checkpoint.parse_note "{\"schema\":\"cheri_c.status/v1\",\"tenant\":7}" with
  | Ok _ -> Alcotest.fail "foreign schema accepted as a checkpoint note"
  | Error e -> check_bool "error names the schema" true (String.length e > 0)

let test_run_serial_slicing_invariant () =
  (* the serial reference counts one slice per Machine.run call; the
     slice count must be a pure function of (source, fuel, slice) *)
  let src = "int main(void) { long a = 0; for (long i = 0; i < 5000; i++) { a = a + i; } print_int(a); return 0; }" in
  match
    ( Service.run_serial ~abi:"cheriv3" ~fuel:10_000_000 ~slice:5_000 src,
      Service.run_serial ~abi:"cheriv3" ~fuel:10_000_000 ~slice:5_000 src )
  with
  | Ok a, Ok b ->
      check_bool "serial reference is deterministic" true (a = b);
      check_bool "terminates with an exit outcome" true
        (String.length a.Service.r_outcome >= 5
        && String.sub a.Service.r_outcome 0 5 = "exit:");
      check_bool "multiple slices at a 5k-fuel slice" true (a.Service.r_slices > 1);
      check_bool "output captured" true (String.length a.Service.r_output > 0)
  | Error e, _ | _, Error e -> Alcotest.failf "run_serial failed: %s" e

let suite =
  [
    Alcotest.test_case "frame roundtrip" `Quick test_frame_roundtrip;
    Alcotest.test_case "frame reassembly from split reads" `Quick test_frame_split_feeds;
    Alcotest.test_case "corrupt / torn headers" `Quick test_frame_corrupt_header;
    Alcotest.test_case "oversize frame refused" `Quick test_frame_oversize_refused;
    Alcotest.test_case "admission capacity + release" `Quick test_admission_capacity;
    Alcotest.test_case "admission hints stretch, reset, reproduce" `Quick
      test_admission_hints_stretch_and_reset;
    Alcotest.test_case "config JSON round trip" `Quick test_config_roundtrip;
    Alcotest.test_case "assignment JSON round trip" `Quick test_assignment_roundtrip;
    Alcotest.test_case "checkpoint note schema" `Quick test_checkpoint_note;
    Alcotest.test_case "run_serial deterministic slicing" `Quick
      test_run_serial_slicing_invariant;
  ]
