(* The multi-tenant service's pure pieces: wire framing, admission
   control, and the checkpoint/config/assignment JSON round trips. The
   process-level behavior (worker SIGKILL, heartbeat reaping,
   checkpoint corruption) is covered by the cheri-serve --chaos rule
   in bin/dune. *)

module Protocol = Cheri_service.Protocol
module Admission = Cheri_service.Admission
module Service = Cheri_service.Service
module Json = Cheri_util.Json

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* -- protocol framing --------------------------------------------------------- *)

let test_frame_roundtrip () =
  let payloads = [ ""; "x"; "{\"op\":\"submit\"}"; String.make 100_000 'z'; "a\nb\nc\n" ] in
  let r = Protocol.Reader.create () in
  List.iter (fun p -> Protocol.Reader.feed r (Protocol.encode p)) payloads;
  List.iter
    (fun p ->
      match Protocol.Reader.next r with
      | `Frame got -> check_string "frame payload survives" p got
      | `Awaiting -> Alcotest.fail "complete frame reported as awaiting"
      | `Corrupt m -> Alcotest.failf "valid frame reported corrupt: %s" m)
    payloads;
  check_bool "drained reader awaits" true (Protocol.Reader.next r = `Awaiting)

let test_frame_split_feeds () =
  (* bytes arriving one at a time across reads must reassemble *)
  let p = "{\"op\":\"poll\",\"tenant\":3}" in
  let framed = Protocol.encode p in
  let r = Protocol.Reader.create () in
  String.iter
    (fun c ->
      check_bool "no frame before the last byte" true (Protocol.Reader.next r = `Awaiting);
      Protocol.Reader.feed r (String.make 1 c))
    (String.sub framed 0 (String.length framed - 1));
  Protocol.Reader.feed r (String.make 1 framed.[String.length framed - 1]);
  check_bool "frame completes on the last byte" true (Protocol.Reader.next r = `Frame p)

let test_frame_corrupt_header () =
  let r = Protocol.Reader.create () in
  Protocol.Reader.feed r "not a hex header, definitely";
  (match Protocol.Reader.next r with
  | `Corrupt _ -> ()
  | `Frame _ | `Awaiting -> Alcotest.fail "garbage header must read as corrupt");
  (* a torn header (shorter than 9 bytes) is awaiting, not corrupt:
     that is what a SIGKILLed writer's last frame looks like *)
  let r2 = Protocol.Reader.create () in
  Protocol.Reader.feed r2 "0000";
  check_bool "torn header awaits" true (Protocol.Reader.next r2 = `Awaiting)

let test_frame_oversize_refused () =
  let r = Protocol.Reader.create () in
  Protocol.Reader.feed r "7fffffff\n";
  match Protocol.Reader.next r with
  | `Corrupt m -> check_bool "mentions the limit" true (String.length m > 0)
  | `Frame _ | `Awaiting -> Alcotest.fail "a 2 GiB length must be refused, not buffered"

(* Adversarial chunking: any valid frame stream, split at arbitrary
   byte boundaries (including mid-header), must round-trip exactly; and
   every torn tail — any strict prefix of the stream — must read as
   Awaiting, never Corrupt. This is the wire-level half of the crash
   story: a SIGKILLed writer's final partial frame has to look like
   "not yet", not "poisoned connection". *)
let prop_reader_chunking =
  QCheck.Test.make ~name:"reader: arbitrary chunking round-trips; torn tails never corrupt"
    ~count:100
    QCheck.(pair (small_list string) (small_list small_nat))
    (fun (payloads, cuts) ->
      let stream = String.concat "" (List.map Protocol.encode payloads) in
      let len = String.length stream in
      (* split the stream into chunks of 1..17 bytes driven by [cuts];
         the final chunk takes whatever remains *)
      let rec chunks pos cuts acc =
        if pos >= len then List.rev acc
        else
          match cuts with
          | [] -> List.rev (String.sub stream pos (len - pos) :: acc)
          | c :: rest ->
              let n = min (1 + (c mod 17)) (len - pos) in
              chunks (pos + n) rest (String.sub stream pos n :: acc)
      in
      let r = Protocol.Reader.create () in
      let got = ref [] in
      let corrupt = ref false in
      let rec drain () =
        match Protocol.Reader.next r with
        | `Frame f ->
            got := f :: !got;
            drain ()
        | `Awaiting -> ()
        | `Corrupt _ -> corrupt := true
      in
      List.iter
        (fun chunk ->
          Protocol.Reader.feed r chunk;
          drain ())
        (chunks 0 cuts []);
      let roundtrips = (not !corrupt) && List.rev !got = payloads in
      let tails_incomplete =
        (* every strict prefix: frames then Awaiting, never Corrupt *)
        let ok = ref true in
        for k = 0 to len - 1 do
          let r = Protocol.Reader.create () in
          Protocol.Reader.feed r (String.sub stream 0 k);
          let rec d () =
            match Protocol.Reader.next r with
            | `Frame _ -> d ()
            | `Awaiting -> ()
            | `Corrupt _ -> ok := false
          in
          d ()
        done;
        !ok
      in
      roundtrips && tails_incomplete)

(* -- admission control -------------------------------------------------------- *)

let test_admission_capacity () =
  let a = Admission.create ~capacity:3 () in
  let admits = List.init 3 (fun _ -> Admission.request a) in
  check_bool "under capacity admits" true
    (List.for_all (function Admission.Admit -> true | _ -> false) admits);
  check_int "live tracks admits" 3 (Admission.live a);
  (match Admission.request a with
  | Admission.Admit -> Alcotest.fail "fourth tenant admitted over a capacity of 3"
  | Admission.Reject { retry_after_s } ->
      check_bool "hint is positive" true (retry_after_s > 0.0));
  check_int "rejection does not take a slot" 3 (Admission.live a);
  Admission.release a;
  (match Admission.request a with
  | Admission.Admit -> ()
  | Admission.Reject _ -> Alcotest.fail "freed slot not readmitted");
  check_int "admitted total" 4 (Admission.admitted a);
  check_int "rejected total" 1 (Admission.rejected a)

let test_admission_hints_stretch_and_reset () =
  let hints seed =
    let a = Admission.create ~seed ~capacity:1 () in
    ignore (Admission.request a);
    List.init 6 (fun _ ->
        match Admission.request a with
        | Admission.Reject { retry_after_s } -> retry_after_s
        | Admission.Admit -> Alcotest.fail "admitted over capacity")
  in
  let h = hints 7 in
  check_bool "hints grow under a sustained rejection streak" true
    (List.nth h 5 > List.nth h 0);
  check_bool "hints are reproducible for a seed" true (hints 7 = h);
  check_bool "hints de-synchronize across seeds" true (hints 8 <> h);
  (* an admit resets the streak: the next rejection snaps back *)
  let a = Admission.create ~seed:7 ~capacity:1 () in
  ignore (Admission.request a);
  let first =
    match Admission.request a with
    | Admission.Reject { retry_after_s } -> retry_after_s
    | Admission.Admit -> Alcotest.fail "admitted over capacity"
  in
  for _ = 1 to 5 do ignore (Admission.request a) done;
  Admission.release a;
  ignore (Admission.request a) (* admit: resets the streak *);
  let after_reset =
    match Admission.request a with
    | Admission.Reject { retry_after_s } -> retry_after_s
    | Admission.Admit -> Alcotest.fail "admitted over capacity"
  in
  check_bool "streak resets after an admit" true (after_reset = first)

let test_admission_dynamic_capacity () =
  (* fleet pressure: shrinking the cap below live evicts nothing but
     blocks new admits until enough tenants finish *)
  let a = Admission.create ~capacity:4 () in
  for _ = 1 to 4 do
    ignore (Admission.request a)
  done;
  Admission.set_capacity a 2;
  check_int "shrink keeps live untouched" 4 (Admission.live a);
  (match Admission.request a with
  | Admission.Admit -> Alcotest.fail "admitted over a shrunken capacity"
  | Admission.Reject _ -> ());
  Admission.release a;
  Admission.release a;
  (match Admission.request a with
  | Admission.Admit -> Alcotest.fail "live 2 = capacity 2 must still reject"
  | Admission.Reject _ -> ());
  Admission.release a;
  (match Admission.request a with
  | Admission.Admit -> ()
  | Admission.Reject _ -> Alcotest.fail "freed below the new cap must admit");
  Admission.set_capacity a 8;
  match Admission.request a with
  | Admission.Admit -> ()
  | Admission.Reject _ -> Alcotest.fail "grown capacity must admit"

let test_admission_hint_ceiling () =
  (* whatever the base and however deep the streak, no client is ever
     told to wait longer than Admission.hint_cap_s *)
  List.iter
    (fun retry_base_s ->
      let a = Admission.create ~seed:3 ~retry_base_s ~capacity:1 () in
      ignore (Admission.request a);
      for _ = 1 to 40 do
        match Admission.request a with
        | Admission.Reject { retry_after_s } ->
            check_bool "hint below the ceiling" true
              (retry_after_s <= Admission.hint_cap_s +. 1e-9)
        | Admission.Admit -> Alcotest.fail "admitted over capacity"
      done)
    [ 0.05; 2.0; 10.0; 120.0 ]

(* -- wire round trips --------------------------------------------------------- *)

let test_config_roundtrip () =
  let c =
    {
      (Service.default_config ~dir:"/tmp/x") with
      Service.workers = 5;
      capacity = 9;
      heartbeat_s = 0.125;
      corrupt_requeue = 2;
    }
  in
  match Service.config_of_json (Service.config_to_json c) with
  | Error e -> Alcotest.failf "config round trip: %s" e
  | Ok c' -> check_bool "config survives the JSON round trip" true (c = c')

let test_assignment_roundtrip () =
  let a =
    {
      Service.a_tenant = 12;
      a_source = "int main(void) { return 0; }\n";
      a_abi = "CHERIv3";
      a_fuel = 1_000_000;
      a_slice = 10_000;
      a_deadline_s = Some 2.5;
      a_restarts = 3;
      a_migrations = 2;
    }
  in
  match Service.assignment_of_json (Service.assignment_to_json a) with
  | Error e -> Alcotest.failf "assignment round trip: %s" e
  | Ok a' -> check_bool "assignment survives the JSON round trip" true (a = a')

let sample_note =
  Service.Checkpoint.note ~tenant:7 ~slices:42 ~wall_s:1.5 ~resumed:true ~scratch:false
    ~migrations:2 ~restarts:1 ~source:"int main(void) { return 0; }" ~abi:"CHERIv3"
    ~fuel:1_000_000 ~slice:10_000 ~deadline_s:None

let test_checkpoint_note () =
  (match Service.Checkpoint.parse_note sample_note with
  | Error e -> Alcotest.failf "note round trip: %s" e
  | Ok ck ->
      check_int "tenant" 7 ck.Service.Checkpoint.ck_tenant;
      check_int "slices" 42 ck.Service.Checkpoint.ck_slices;
      check_bool "resumed flag is lineage-cumulative" true ck.Service.Checkpoint.ck_resumed;
      check_bool "scratch flag" false ck.Service.Checkpoint.ck_scratch;
      check_int "migration lineage counter" 2 ck.Service.Checkpoint.ck_migrations;
      check_int "restarts travel in the note" 1 ck.Service.Checkpoint.ck_restarts;
      check_bool "the note is self-describing" true (Service.Checkpoint.self_describing ck));
  (* a pre-migration note (no embedded assignment) still parses — the
     schema string did not change — but is not self-describing *)
  (match
     Service.Checkpoint.parse_note
       (Printf.sprintf
          "{\"schema\":%S,\"tenant\":3,\"slices\":9,\"wall_s\":0.25,\"resumed\":false,\"scratch\":false}"
          Service.Checkpoint.schema)
   with
  | Error e -> Alcotest.failf "pre-migration note must still parse: %s" e
  | Ok ck ->
      check_int "defaulted migrations" 0 ck.Service.Checkpoint.ck_migrations;
      check_bool "not self-describing without a source" false
        (Service.Checkpoint.self_describing ck));
  (* a foreign note schema must be refused, not misread *)
  match Service.Checkpoint.parse_note "{\"schema\":\"cheri_c.status/v1\",\"tenant\":7}" with
  | Ok _ -> Alcotest.fail "foreign schema accepted as a checkpoint note"
  | Error e -> check_bool "error names the schema" true (String.length e > 0)

let test_run_serial_slicing_invariant () =
  (* the serial reference counts one slice per Machine.run call; the
     slice count must be a pure function of (source, fuel, slice) *)
  let src = "int main(void) { long a = 0; for (long i = 0; i < 5000; i++) { a = a + i; } print_int(a); return 0; }" in
  match
    ( Service.run_serial ~abi:"cheriv3" ~fuel:10_000_000 ~slice:5_000 src,
      Service.run_serial ~abi:"cheriv3" ~fuel:10_000_000 ~slice:5_000 src )
  with
  | Ok a, Ok b ->
      check_bool "serial reference is deterministic" true (a = b);
      check_bool "terminates with an exit outcome" true
        (String.length a.Service.r_outcome >= 5
        && String.sub a.Service.r_outcome 0 5 = "exit:");
      check_bool "multiple slices at a 5k-fuel slice" true (a.Service.r_slices > 1);
      check_bool "output captured" true (String.length a.Service.r_output > 0)
  | Error e, _ | _, Error e -> Alcotest.failf "run_serial failed: %s" e

(* -- hand-off entries and the drain manifest ----------------------------------- *)

let sample_result =
  {
    Service.r_outcome = "exit:0";
    r_output = "42\n";
    r_cycles = 1234;
    r_instret = 1200;
    r_slices = 3;
    r_resumed = true;
    r_scratch = false;
    r_migrations = 1;
  }

let sample_taken =
  [
    Service.T_done { tk_tenant = 4; tk_restarts = 1; tk_result = sample_result };
    Service.T_failed
      { tk_tenant = 7; tk_restarts = 0; tk_migrations = 2; tk_detail = "unknown abi" };
    Service.T_drained
      {
        tk_tenant = 9;
        tk_source = "int main(void) { return 3; }";
        tk_abi = "CHERIv3";
        tk_fuel = 500_000;
        tk_slice = 20_000;
        tk_deadline_s = Some 1.5;
        tk_restarts = 1;
        tk_migrations = 1;
        tk_slices = 11;
        tk_checkpoint = true;
      };
  ]

let test_taken_roundtrip () =
  List.iter
    (fun e ->
      match Service.taken_of_json (Service.taken_to_json e) with
      | Error err -> Alcotest.failf "taken round trip: %s" err
      | Ok e' -> check_bool "taken entry survives the JSON round trip" true (e = e'))
    sample_taken

let test_manifest_roundtrip () =
  let manifest =
    Json.encode
      (Json.Obj
         [
           ("schema", Json.Str Service.manifest_schema);
           ("entries", Json.Arr (List.map Service.taken_to_json sample_taken));
         ])
  in
  (match Service.manifest_of_json manifest with
  | Error e -> Alcotest.failf "manifest round trip: %s" e
  | Ok entries ->
      check_int "all entries survive" (List.length sample_taken) (List.length entries);
      check_bool "entries survive in order" true (entries = sample_taken));
  match Service.manifest_of_json "{\"schema\":\"cheri_c.serve-status/v1\",\"entries\":[]}" with
  | Ok _ -> Alcotest.fail "foreign schema accepted as a drain manifest"
  | Error _ -> ()

(* -- startup helpers: orphan sweep and socket claim ----------------------------- *)

let with_tmpdir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "cheri_serve_test_%d_%d" (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)))) (fun () -> f dir)

let test_sweep_checkpoints () =
  with_tmpdir (fun dir ->
      Unix.mkdir (Filename.concat dir "checkpoints") 0o755;
      (* a valid self-describing checkpoint: a real machine snapshot
         with a migration-era note *)
      let abi = Option.get (Cheri_compiler.Abi.of_key "cheriv3") in
      let linked =
        Cheri_compiler.Codegen.compile_source abi "int main(void) { return 0; }"
      in
      let m = Cheri_compiler.Codegen.machine_for abi linked in
      let note =
        Service.Checkpoint.note ~tenant:4 ~slices:2 ~wall_s:0.1 ~resumed:false ~scratch:false
          ~migrations:1 ~restarts:0 ~source:"int main(void) { return 0; }" ~abi:"CHERIv3"
          ~fuel:1_000_000 ~slice:10_000 ~deadline_s:None
      in
      (match
         Cheri_snapshot.Snapshot.save ~note ~abi:"CHERIv3"
           ~path:(Service.Checkpoint.path ~dir ~tenant:4)
           m
       with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "snapshot save: %a" Cheri_snapshot.Snapshot.pp_error e);
      (* a corrupt file and a pre-migration (non-self-describing) one *)
      let corrupt = Service.Checkpoint.path ~dir ~tenant:8 in
      let oc = open_out_bin corrupt in
      output_string oc "definitely not a snapshot";
      close_out oc;
      let old_note =
        Printf.sprintf
          "{\"schema\":%S,\"tenant\":5,\"slices\":1,\"wall_s\":0.1,\"resumed\":false,\"scratch\":false}"
          Service.Checkpoint.schema
      in
      (match
         Cheri_snapshot.Snapshot.save ~note:old_note ~abi:"CHERIv3"
           ~path:(Service.Checkpoint.path ~dir ~tenant:5)
           m
       with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "snapshot save: %a" Cheri_snapshot.Snapshot.pp_error e);
      let recovered, discarded = Service.sweep_checkpoints ~dir in
      check_int "one orphan recovered" 1 (List.length recovered);
      check_int "corrupt + pre-migration discarded" 2 discarded;
      let meta = List.hd recovered in
      check_int "recovered tenant id" 4 meta.Service.Checkpoint.ck_tenant;
      check_int "recovered migrations" 1 meta.Service.Checkpoint.ck_migrations;
      check_bool "valid checkpoint file kept" true
        (Sys.file_exists (Service.Checkpoint.path ~dir ~tenant:4));
      check_bool "corrupt checkpoint deleted" false (Sys.file_exists corrupt);
      check_bool "non-self-describing checkpoint deleted" false
        (Sys.file_exists (Service.Checkpoint.path ~dir ~tenant:5));
      (* idempotent: a second sweep finds the same recoverable orphan *)
      let again, d2 = Service.sweep_checkpoints ~dir in
      check_int "second sweep: same orphan" 1 (List.length again);
      check_int "second sweep: nothing left to discard" 0 d2)

let test_bind_listener () =
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "probe.sock" in
      (* fresh path binds *)
      let fd =
        match Service.bind_listener path with
        | Ok fd -> fd
        | Error e -> Alcotest.failf "fresh bind failed: %s" e
      in
      (* a live listener is detected, not stolen *)
      (match Service.bind_listener path with
      | Ok _ -> Alcotest.fail "second bind stole a live listener's socket"
      | Error msg -> check_bool "error names the path" true (String.length msg > 0));
      Unix.close fd;
      (* the leftover file is now a dead socket: unlink and rebind *)
      check_bool "socket file left behind" true (Sys.file_exists path);
      (match Service.bind_listener path with
      | Ok fd2 -> Unix.close fd2
      | Error e -> Alcotest.failf "dead leftover not reclaimed: %s" e);
      (* a stale regular file at the path is also reclaimed *)
      let oc = open_out (Filename.concat dir "stale.sock") in
      output_string oc "junk";
      close_out oc;
      match Service.bind_listener (Filename.concat dir "stale.sock") with
      | Ok fd3 -> Unix.close fd3
      | Error e -> Alcotest.failf "stale regular file not reclaimed: %s" e)

let suite =
  [
    Alcotest.test_case "frame roundtrip" `Quick test_frame_roundtrip;
    Alcotest.test_case "frame reassembly from split reads" `Quick test_frame_split_feeds;
    Alcotest.test_case "corrupt / torn headers" `Quick test_frame_corrupt_header;
    Alcotest.test_case "oversize frame refused" `Quick test_frame_oversize_refused;
    QCheck_alcotest.to_alcotest prop_reader_chunking;
    Alcotest.test_case "admission capacity + release" `Quick test_admission_capacity;
    Alcotest.test_case "admission hints stretch, reset, reproduce" `Quick
      test_admission_hints_stretch_and_reset;
    Alcotest.test_case "admission capacity is dynamic" `Quick test_admission_dynamic_capacity;
    Alcotest.test_case "admission hints never exceed the ceiling" `Quick
      test_admission_hint_ceiling;
    Alcotest.test_case "config JSON round trip" `Quick test_config_roundtrip;
    Alcotest.test_case "assignment JSON round trip" `Quick test_assignment_roundtrip;
    Alcotest.test_case "checkpoint note schema" `Quick test_checkpoint_note;
    Alcotest.test_case "taken entry JSON round trip" `Quick test_taken_roundtrip;
    Alcotest.test_case "drain manifest round trip" `Quick test_manifest_roundtrip;
    Alcotest.test_case "orphan checkpoint sweep" `Quick test_sweep_checkpoints;
    Alcotest.test_case "socket claim probes before unlinking" `Quick test_bind_listener;
    Alcotest.test_case "run_serial deterministic slicing" `Quick
      test_run_serial_slicing_invariant;
  ]
