(* Printer coverage: every constructor of Cap_fault.t, Machine.trap
   and Machine.outcome renders to a non-empty, distinctive string, and
   to_string agrees with pp. Diagnostics flow into trap messages,
   telemetry fault details and Runner.Run_failed, so a constructor
   falling through to a generic or empty rendering is a real loss. *)

module Fault = Cheri_core.Cap_fault
module Perms = Cheri_core.Perms
module Machine = Cheri_isa.Machine

let check_bool = Alcotest.(check bool)

let render pp v = Format.asprintf "%a" pp v

let all_cap_faults : (string * Fault.t) list =
  [
    ("tag", Fault.Tag_violation);
    ("bounds", Fault.Bounds_violation { addr = 0x40L; base = 0x10L; top = 0x20L });
    ("perm", Fault.Perm_violation Perms.Store_cap);
    ("length", Fault.Length_violation);
    ("align", Fault.Alignment_violation { addr = 0x21L; required = 32 });
    ("repr", Fault.Representation_violation);
    ("seal", Fault.Seal_violation "store via sealed capability");
    ("unsupported", Fault.Unsupported "CBuildCap");
  ]

let all_traps : (string * Machine.trap) list =
  [
    ("cap", Machine.Cap_trap Fault.Tag_violation);
    ("overflow", Machine.Overflow_trap);
    ("div_zero", Machine.Div_by_zero);
    ("bus", Machine.Bus_trap 0xdead00L);
    ("unresolved", Machine.Unresolved_operand);
    ("bad_syscall", Machine.Invalid_syscall 99L);
    ("oom", Machine.Out_of_memory);
    ("bad_free", Machine.Invalid_free 0x1000L);
    ("pc_range", Machine.Pc_out_of_range (-1));
  ]

let all_outcomes : (string * Machine.outcome) list =
  [
    ("exit", Machine.Exit 42L);
    ("trap", Machine.Trap { trap = Machine.Div_by_zero; pc = 7 });
    ("fuel", Machine.Fuel_exhausted);
  ]

let assert_distinct what rendered =
  let sorted = List.sort_uniq compare (List.map snd rendered) in
  Alcotest.(check int)
    (what ^ ": every constructor renders distinctly")
    (List.length rendered) (List.length sorted)

let assert_nonempty what rendered =
  List.iter
    (fun (name, s) ->
      check_bool (Printf.sprintf "%s/%s renders non-empty" what name) true (String.trim s <> ""))
    rendered

let test_cap_fault_pp () =
  let rendered = List.map (fun (n, f) -> (n, render Fault.pp f)) all_cap_faults in
  assert_nonempty "cap_fault" rendered;
  assert_distinct "cap_fault" rendered;
  (* the payload-carrying constructors surface their payloads *)
  let find n = List.assoc n rendered in
  let contains hay sub =
    let n = String.length sub and m = String.length hay in
    let rec go i = i + n <= m && (String.sub hay i n = sub || go (i + 1)) in
    go 0
  in
  check_bool "bounds carries addr" true (contains (find "bounds") "0x40");
  check_bool "bounds carries range" true (contains (find "bounds") "0x10");
  check_bool "align carries requirement" true (contains (find "align") "32");
  check_bool "seal carries context" true (contains (find "seal") "sealed");
  check_bool "unsupported names the op" true (contains (find "unsupported") "CBuildCap")

let test_cap_fault_to_string_matches_pp () =
  List.iter
    (fun (name, f) ->
      Alcotest.(check string)
        (Printf.sprintf "to_string = pp for %s" name)
        (render Fault.pp f) (Fault.to_string f))
    all_cap_faults

let test_pp_trap () =
  let rendered = List.map (fun (n, t) -> (n, render Machine.pp_trap t)) all_traps in
  assert_nonempty "trap" rendered;
  assert_distinct "trap" rendered;
  let contains hay sub =
    let n = String.length sub and m = String.length hay in
    let rec go i = i + n <= m && (String.sub hay i n = sub || go (i + 1)) in
    go 0
  in
  (* Cap_trap delegates to the capability fault printer *)
  check_bool "cap trap embeds the fault" true
    (contains (List.assoc "cap" rendered) (render Fault.pp Fault.Tag_violation));
  check_bool "bus trap carries the address" true (contains (List.assoc "bus" rendered) "0xdead00");
  check_bool "bad syscall carries the number" true (contains (List.assoc "bad_syscall" rendered) "99")

let test_pp_outcome () =
  let rendered = List.map (fun (n, o) -> (n, render Machine.pp_outcome o)) all_outcomes in
  assert_nonempty "outcome" rendered;
  assert_distinct "outcome" rendered;
  let contains hay sub =
    let n = String.length sub and m = String.length hay in
    let rec go i = i + n <= m && (String.sub hay i n = sub || go (i + 1)) in
    go 0
  in
  check_bool "exit carries the code" true (contains (List.assoc "exit" rendered) "42");
  check_bool "trap carries pc=" true (contains (List.assoc "trap" rendered) "pc=7");
  check_bool "trap embeds the trap cause" true
    (contains (List.assoc "trap" rendered) (render Machine.pp_trap Machine.Div_by_zero))

let suite =
  [
    Alcotest.test_case "Cap_fault.pp covers every constructor" `Quick test_cap_fault_pp;
    Alcotest.test_case "Cap_fault.to_string consistent with pp" `Quick
      test_cap_fault_to_string_matches_pp;
    Alcotest.test_case "Machine.pp_trap covers every constructor" `Quick test_pp_trap;
    Alcotest.test_case "Machine.pp_outcome covers every constructor" `Quick test_pp_outcome;
  ]
