(* The benchmark harness: regenerates every table and figure from the
   paper's evaluation, runs the ablation studies listed in DESIGN.md,
   and runs Bechamel microbenchmarks of the substrate.

   Usage:
     bench/main.exe [--jobs N] ...       fan (workload x ABI) runs over N domains
     bench/main.exe              run everything (what bench_output.txt records)
     bench/main.exe t1|t3|t4     one table
     bench/main.exe f1|f2|f3|f4  one figure
     bench/main.exe ablations    the ablation studies
     bench/main.exe micro        Bechamel microbenchmarks only
     bench/main.exe json [FILE]  machine-readable per-workload results
                                 (default FILE: [bench_output_file] below)
     bench/main.exe perf [--quick] [FILE]
                                 softcore throughput sweep: retired
                                 insn/sec, wall time, and GC minor
                                 words per instruction for every
                                 (workload x ABI); --quick runs one
                                 repeat at test scales (rides along
                                 with dune runtest). Default FILE:
                                 [perf_output_file]. Measure with
                                 --profile release (the dev profile
                                 disables cross-module inlining).
     bench/main.exe inject [FILE]  full fault-injection campaign: the
                                 per-ABI detection matrix over every
                                 builtin workload and fault kind
                                 (default FILE: [inject_output_file])
     bench/main.exe snap [--quick] [FILE]
                                 snapshot image size and save/restore
                                 latency per workload, plus the
                                 preemptive-slicing throughput tax
                                 (default FILE: [snap_output_file];
                                 measure with --profile release)
     bench/main.exe serve [--quick] [FILE]
                                 multi-tenant service benchmark against a
                                 real cheri-serve supervisor: sustained
                                 jobs/s with p50/p99 latency, then the
                                 recovery time after a worker SIGKILL
                                 (default FILE: [serve_output_file];
                                 measure with --profile release)
     bench/main.exe serve --shards [N] [--quick] [FILE]
                                 sharded-fleet variant against a real
                                 router over N >= 3 supervisor shards:
                                 sustained jobs/s with p50/p99, recovery
                                 after a whole-shard SIGKILL, and drain /
                                 migration latency percentiles over
                                 repeated admin drain+rebalance cycles
                                 (default FILE: [serve_fleet_output_file])
     bench/main.exe smoke        fast telemetry-overhead assertions (runs
                                 under dune runtest)
     bench/main.exe compare [--threshold P] [--quick] OLD.json NEW.json
                                 the regression gate: diff two committed
                                 BENCH_PR*.json files of the same schema
                                 family and exit 1 on any metric worse
                                 than P% (default 10); --quick compares
                                 only the cell intersection
     bench/main.exe compare --self-test FILE
                                 prove the gate bites: FILE vs itself
                                 must pass, FILE vs a synthetically
                                 20%-worsened copy must fail

   Every figure/ablation/json cell is an independent (program x ABI)
   run with per-run machine state, so they fan out over the
   Cheri_exec.Exec domain pool; results are keyed by submission index,
   so any --jobs value produces identical tables. *)

module W = Cheri_workloads
module A = Cheri_analysis
module Abi = Cheri_compiler.Abi
module Machine = Cheri_isa.Machine
module Telemetry = Cheri_telemetry.Telemetry
module Exec = Cheri_exec.Exec
module Inject = Cheri_inject.Inject
module Json = Cheri_util.Json
module Obs = Cheri_obs.Obs
module Bench_compare = Cheri_obs.Bench_compare

(* the default output of `bench/main.exe json`, bumped once per PR so
   the performance trajectory diffs file-to-file *)
let bench_output_file = "BENCH_PR6.json"

(* this PR's artifact: the fault-injection detection matrix *)
let inject_output_file = "BENCH_PR3.json"

(* set from --jobs; default: a few domains (see Pool.default_jobs) *)
let jobs = ref (Exec.Pool.default_jobs ())

let ppf = Format.std_formatter
let section name = Format.fprintf ppf "@.=== %s ===@." name

(* -- tables ----------------------------------------------------------------- *)

let table1 () =
  section "Table 1 (idiom survey over the synthetic corpus)";
  A.Corpus.print ppf (A.Corpus.run ())

let table3 () =
  section "Table 3 (idioms supported by each abstract-machine interpretation)";
  Cheri_interp.Table3.print ppf ();
  (* verify against the paper inline *)
  let rows = Cheri_interp.Table3.table () in
  let ok =
    List.for_all
      (fun (r : Cheri_interp.Table3.row) ->
        match List.assoc_opt r.model_name Cheri_interp.Table3.paper_expectation_strict_reading with
        | Some expected -> List.map snd r.cells = expected
        | None -> false)
      rows
  in
  Format.fprintf ppf "matches the paper: %s@." (if ok then "yes" else "NO");
  Format.fprintf ppf "@.supplementary idioms (\u{00a7}2 Last Word, \u{00a7}3.5 xor list):@.";
  Cheri_interp.Table3.print_supplementary ppf ()

let table4 () =
  section "Table 4 (lines changed to port each workload)";
  W.Port_audit.print ppf (W.Port_audit.table4 ())

(* -- figures ---------------------------------------------------------------- *)

let figure1 () =
  section "Figure 1 (Olden, 100 MHz cycle model)";
  W.Figures.print_figure1 ppf (W.Figures.figure1 ~jobs:!jobs ())

let figure2 () =
  section "Figure 2 (Dhrystone)";
  W.Figures.print_figure2 ppf (W.Figures.figure2 ~jobs:!jobs ())

let figure3 () =
  section "Figure 3 (tcpdump over the synthetic trace)";
  W.Figures.print_figure3 ppf (W.Figures.figure3 ~jobs:!jobs ())

let figure4 () =
  section "Figure 4 (zlib-style compression overhead by input size)";
  W.Figures.print_figure4 ppf (W.Figures.figure4 ~jobs:!jobs ())

(* -- ablations --------------------------------------------------------------- *)

(* 1. tag granularity: how much collateral capability invalidation do
   coarser tag granules cause? *)
let ablation_tag_granularity () =
  section "Ablation: tag granularity vs collateral capability invalidation";
  Format.fprintf ppf "%-10s%24s@." "GRANULE" "caps surviving neighbour writes";
  List.iter
    (fun granule ->
      let mem = Cheri_tagmem.Tagmem.create ~granule ~size_bytes:(1 lsl 16) () in
      let n = 256 in
      (* a capability every 64 bytes, then a 1-byte write 40 bytes after
         each capability (inside the granule only if granule > 40) *)
      for i = 0 to n - 1 do
        let addr = Int64.of_int (i * 64) in
        Cheri_tagmem.Tagmem.store_cap_i64 mem ~addr
          (Cheri_core.Capability.make ~base:addr ~length:8L ~perms:Cheri_core.Perms.all)
      done;
      for i = 0 to n - 1 do
        Cheri_tagmem.Tagmem.store_byte_i64 mem (Int64.of_int ((i * 64) + 40)) 0xff
      done;
      Format.fprintf ppf "%-10d%16d / %d@." granule (Cheri_tagmem.Tagmem.count_tags mem) n)
    [ 32; 64; 128; 256 ]

(* 2. cache geometry: the Olden capability overhead as the L2 grows.
   TreeAdd's tree is ~100 KB of 24-byte nodes under MIPS but ~400 KB of
   96-byte nodes under capabilities, so mid-sized L2s hold one working
   set but not the other. *)
let ablation_cache_geometry () =
  section "Ablation: TreeAdd capability overhead vs L2 size";
  Format.fprintf ppf "%-10s%12s%12s%12s@." "L2" "MIPS(s)" "CHERIv3(s)" "overhead";
  let k = List.find (fun k -> k.W.Olden.kname = "TreeAdd") W.Olden.kernels in
  let src = k.W.Olden.source { W.Olden.scale = 2 } in
  let v3abi = Abi.Cheri Cheri_core.Cap_ops.V3 in
  let l2_sizes = [ 32; 64; 128; 256; 512 ] in
  let tasks = List.concat_map (fun l2 -> [ (l2, Abi.Mips); (l2, v3abi) ]) l2_sizes in
  let cells =
    Exec.Pool.map ~jobs:!jobs
      (fun (l2_kb, abi) ->
        let timing = { Cheri_isa.Cache.Timing.paper_config with l2_size = l2_kb * 1024 } in
        let config = { (Cheri_compiler.Codegen.machine_config abi) with Machine.timing } in
        W.Runner.run ~config abi src)
      tasks
  in
  let rec rows l2s cells =
    match (l2s, cells) with
    | l2_kb :: l2_rest, mips_cell :: v3_cell :: cell_rest ->
        let mips = Exec.Pool.get mips_cell and v3 = Exec.Pool.get v3_cell in
        Format.fprintf ppf "%-10s%12.4f%12.4f%11.2fx@."
          (string_of_int l2_kb ^ "K")
          (W.Runner.seconds mips) (W.Runner.seconds v3)
          (float_of_int v3.W.Runner.cycles /. float_of_int mips.W.Runner.cycles);
        rows l2_rest cell_rest
    | _ -> ()
  in
  rows l2_sizes cells

(* 3. offset vs base-mutation: forward pointer *arithmetic* costs the
   same on both revisions (one register-indexed capability
   instruction); pointer *derivation* — address-of-local, null
   reconstruction from integers — is where v2's lack of offsets shows:
   CIncBase from the DDC plus an explicit null branch, versus one
   CIncOffset immediate or CFromPtr. *)
let ablation_v2_v3_arith () =
  section "Ablation: CHERIv2 base-mutation vs CHERIv3 offset derivation";
  let src =
    {|
void set(long *p, long v) { *p = v; }
int main(void) {
  long x = 0;
  long acc = 0;
  for (long i = 0; i < 40000; i++) {
    set(&x, i);                 /* derive a stack pointer every call */
    long *q = (long *)(i % 2 == 0 ? (long)&x : 0);  /* int->ptr with null case */
    if (q) acc = acc + *q;
  }
  print_int(acc & 1023);
  print_char('\n');
  return 0;
}
|}
  in
  List.iter2
    (fun abi cell ->
      let m = Exec.Pool.get cell in
      Format.fprintf ppf "%-10s instret=%9d cycles=%9d@." (Abi.name abi) m.W.Runner.instret
        m.W.Runner.cycles)
    Abi.all
    (Exec.Pool.map ~jobs:!jobs (fun abi -> W.Runner.run abi src) Abi.all);
  Format.fprintf ppf
    "(CHERIv2 derives pointers by CIncBase from the DDC and needs an explicit@.";
  Format.fprintf ppf
    " null-check branch on int-to-pointer casts; CHERIv3 does each in one@.";
  Format.fprintf ppf " instruction. Forward pointer arithmetic costs the same on both.)@."

(* 4. fail-open vs fail-closed: run a suite of buggy programs under MPX
   (fail-open) and HardBound (fail-closed) and count which bugs trap *)
let ablation_fail_modes () =
  section "Ablation: fail-open (MPX) vs fail-closed (HardBound) on buggy code";
  let buggy =
    [
      ( "stale-int-roundtrip",
        {|
int main(void) {
  long *p = (long *)malloc(8);
  long a = (long)p;
  a = a + 32;                  /* now points at a different object */
  long *q = (long *)(a - 32 + 64);
  *q = 1;                      /* overflowing write via laundered int */
  return 0;
}
|} );
      ( "overflow-via-int",
        {|
int main(void) {
  char *p = (char *)malloc(16);
  long a = (long)p;
  char *q = (char *)(a + 20); /* out of bounds after laundering */
  *q = 'x';
  return 0;
}
|} );
      ( "direct-overflow",
        {|
int main(void) {
  char *p = (char *)malloc(16);
  p[20] = 'x';
  return 0;
}
|} );
    ]
  in
  let caught model src =
    match Cheri_interp.Interp.run_with model src with
    | Cheri_interp.Interp.Fault _ -> true
    | _ -> false
  in
  Format.fprintf ppf "%-24s%12s%12s@." "BUG" "MPX" "HardBound";
  List.iter
    (fun (name, src) ->
      let show m = if caught m src then "trapped" else "missed" in
      Format.fprintf ppf "%-24s%12s%12s@." name
        (show Cheri_models.Registry.mpx)
        (show Cheri_models.Registry.hardbound))
    buggy

let ablations () =
  ablation_tag_granularity ();
  ablation_cache_geometry ();
  ablation_v2_v3_arith ();
  ablation_fail_modes ()

(* -- machine-readable results (json subcommand) ------------------------------- *)

(* One measurement per (workload, ABI), with telemetry attached, so
   future PRs can diff the performance trajectory file-to-file. *)
let json_workloads () =
  let olden =
    List.map
      (fun (k : W.Olden.kernel) ->
        ("Olden/" ^ k.W.Olden.kname, k.W.Olden.source W.Olden.default, None))
      W.Olden.kernels
  in
  let rest =
    [
      ("Dhrystone", W.Dhrystone.source W.Dhrystone.default, None);
      ( "tcpdump",
        W.Tcpdump_sim.source W.Tcpdump_sim.default,
        Some (W.Tcpdump_sim.source_v2 W.Tcpdump_sim.default) );
      ("zlib", W.Zlib_like.source { W.Zlib_like.input_size = 32768; boundary_copy = false }, None);
    ]
  in
  olden @ rest

let measurement_json workload (m : W.Runner.measurement) =
  let t = Option.get m.W.Runner.telemetry in
  Printf.sprintf
    "    {\"workload\":\"%s\",\"abi\":\"%s\",\"cycles\":%d,\"instret\":%d,\"l1_misses\":%d,\"l2_misses\":%d,\"cap_mem_ops\":%d,\"allocs\":%d,\"frees\":%d,\"alloc_bytes\":%Ld,\"collateral_tag_clears\":%d,\"syscalls\":%d}"
    (Json.escape workload)
    (Json.escape (Abi.name m.W.Runner.abi))
    m.W.Runner.cycles m.W.Runner.instret m.W.Runner.l1_misses m.W.Runner.l2_misses
    m.W.Runner.cap_mem_ops t.Telemetry.allocs t.Telemetry.frees t.Telemetry.alloc_bytes
    t.Telemetry.collateral_tag_clears t.Telemetry.syscalls

(* The whole sweep — every (workload x ABI) pair — fanned over the
   pool in one flat task list. Architectural results are bit-identical
   whatever the domain count (per-run machine state, results keyed by
   submission index); only the reported sweep timing varies. *)
let bench_json path =
  let tasks =
    List.concat_map
      (fun (name, src, v2_source) ->
        List.map
          (fun abi ->
            let src =
              match (abi, v2_source) with
              | Abi.Cheri Cheri_core.Cap_ops.V2, Some s -> s
              | _ -> src
            in
            (name, abi, src))
          Abi.all)
      (json_workloads ())
  in
  Format.fprintf ppf "measuring %d (workload x ABI) runs on %d domain(s)...@."
    (List.length tasks) !jobs;
  if !jobs > Domain.recommended_domain_count () then
    Format.fprintf ppf
      "(note: %d jobs on %d recommended domain(s) — oversubscription stalls the OCaml\n\
      \ stop-the-world collector, so wall-clock will not improve on this machine)@."
      !jobs
      (Domain.recommended_domain_count ());
  let cells, wall_s =
    Exec.wall (fun () ->
        Exec.Pool.map ~jobs:!jobs
          (fun (_, abi, src) ->
            W.Runner.run ~sink:(Telemetry.Sink.create ()) abi src)
          tasks)
  in
  let rows =
    List.map2 (fun (name, _, _) cell -> measurement_json name (Exec.Pool.get cell)) tasks cells
  in
  (* the differential check the sequential path did per workload:
     outputs must agree across the three ABIs of each workload *)
  List.iter
    (fun row ->
      match List.map Exec.Pool.get row with
      | ms -> (
          match W.Runner.check_agreement ms with
          | Some e -> W.Runner.fail e
          | None -> ()))
    (let rec chunk3 = function
       | a :: b :: c :: rest -> [ a; b; c ] :: chunk3 rest
       | [] -> []
       | _ -> assert false
     in
     chunk3 cells);
  let serial_s = Exec.Pool.serial_seconds cells in
  let speedup = if wall_s > 0. then serial_s /. wall_s else 1. in
  let body =
    Printf.sprintf
      "{\n\
      \  \"schema\": \"cheri_c.bench/v2\",\n\
      \  \"clock_hz\": 100000000,\n\
      \  \"sweep\": {\"jobs\":%d,\"tasks\":%d,\"wall_s\":%.6f,\"serial_s\":%.6f,\"speedup\":%.2f},\n\
      \  \"results\": [\n%s\n  ]\n\
       }\n"
      !jobs (List.length tasks) wall_s serial_s speedup
      (String.concat ",\n" rows)
  in
  let oc = open_out path in
  output_string oc body;
  close_out oc;
  Format.fprintf ppf "sweep wall %.2fs, serial %.2fs, speedup %.2fx@." wall_s serial_s speedup;
  Format.fprintf ppf "wrote %s (%d measurements)@." path (List.length rows)

(* -- hot-path throughput benchmark (perf subcommand) --------------------------- *)

(* This PR's artifact: softcore throughput through the pre-decoded
   dispatch table, plus the decode-stage cost itself. *)
let perf_output_file = "BENCH_PR7.json"

(* Pre-PR baseline: the release-profile Dhrystone CHERIv3 figure from
   the previous perf artifact (BENCH_PR4.json), measured on the same
   machine. The report carries both numbers so the speedup is
   self-describing. *)
let baseline_insn_per_s = 28_825_425.
let baseline_minor_words_per_insn = 6.40

type perf_cell = {
  p_workload : string;
  p_abi : Abi.t;
  p_cycles : int;
  p_instret : int;
  p_insn_per_s : float;
  p_words_per_insn : float;
  p_digest : string;  (* MD5 of program output, for the agreement gate *)
  p_decode_ms_per_kinsn : float;  (* Decoded.compile cost per 1000 instructions *)
}

(* One (workload x ABI) cell: compile once, run [runs] times on fresh
   machines, keep the best wall-clock. Cycle counts and output are
   asserted identical across repeats — the simulator is deterministic,
   so any variation is a harness bug. *)
let perf_cell ~runs name abi src =
  let linked = Cheri_compiler.Codegen.compile_source abi src in
  (* decode phase: what the pre-execution Decoded.compile pass costs,
     normalized per thousand instructions of code *)
  let code = linked.Cheri_asm.Asm.code in
  let decode_ms_per_kinsn =
    let best = ref infinity in
    for _ = 1 to 5 do
      let t0 = Unix.gettimeofday () in
      ignore (Sys.opaque_identity (Cheri_isa.Decoded.compile code));
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best *. 1000. /. (float_of_int (Array.length code) /. 1000.)
  in
  let fresh () = Cheri_compiler.Codegen.machine_for abi linked in
  ignore (Machine.run (fresh ()));
  (* warm-up *)
  (* compile + earlier cells leave major-heap garbage whose GC slices
     would otherwise land inside the timed region *)
  Gc.compact ();
  let best_dt = ref infinity and words = ref 0. in
  let cycles = ref 0 and instret = ref 0 and digest = ref "" in
  for i = 1 to runs do
    let m = fresh () in
    let w0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    (match Machine.run m with
    | Machine.Exit 0L -> ()
    | o ->
        raise
          (W.Runner.Run_failed
             (Format.asprintf "perf %s/%s: %a" name (Abi.name abi) Machine.pp_outcome o)));
    let dt = Unix.gettimeofday () -. t0 in
    let dw = Gc.minor_words () -. w0 in
    let st = Machine.stats m in
    let d = Digest.to_hex (Digest.string (Machine.output m)) in
    if i > 1 && (st.Machine.st_cycles <> !cycles || d <> !digest) then
      raise (W.Runner.Run_failed (Printf.sprintf "perf %s/%s: nondeterministic run" name (Abi.name abi)));
    cycles := st.Machine.st_cycles;
    instret := st.Machine.st_instret;
    digest := d;
    if dt < !best_dt then begin
      best_dt := dt;
      words := dw /. float_of_int st.Machine.st_instret
    end
  done;
  {
    p_workload = name;
    p_abi = abi;
    p_cycles = !cycles;
    p_instret = !instret;
    p_insn_per_s = float_of_int !instret /. !best_dt;
    p_words_per_insn = !words;
    p_digest = !digest;
    p_decode_ms_per_kinsn = decode_ms_per_kinsn;
  }

let perf_workloads ~quick =
  if not quick then json_workloads ()
  else
    (* test scales: the runtest smoke must finish in seconds *)
    List.map
      (fun (k : W.Olden.kernel) ->
        ("Olden/" ^ k.W.Olden.kname, k.W.Olden.source { W.Olden.scale = 1 }, None))
      W.Olden.kernels
    @ [
        ("Dhrystone", W.Dhrystone.source { W.Dhrystone.iterations = 500 }, None);
        ( "tcpdump",
          W.Tcpdump_sim.source { W.Tcpdump_sim.packets = 200; passes = 1 },
          Some (W.Tcpdump_sim.source_v2 { W.Tcpdump_sim.packets = 200; passes = 1 }) );
        ("zlib", W.Zlib_like.source { W.Zlib_like.input_size = 4096; boundary_copy = false }, None);
      ]

let perf_cell_json c =
  Printf.sprintf
    "    {\"workload\":\"%s\",\"abi\":\"%s\",\"cycles\":%d,\"instret\":%d,\"insn_per_s\":%.0f,\"minor_words_per_insn\":%.3f,\"decode_ms_per_kinsn\":%.3f,\"output_md5\":\"%s\"}"
    (Json.escape c.p_workload)
    (Json.escape (Abi.name c.p_abi))
    c.p_cycles c.p_instret c.p_insn_per_s c.p_words_per_insn c.p_decode_ms_per_kinsn c.p_digest

let bench_perf ~quick path =
  section
    (if quick then "Softcore throughput (perf --quick, test scales)"
     else "Softcore throughput (perf, default scales)");
  if Build_profile.profile <> "release" then
    Format.fprintf ppf
      "WARNING: built with the %s profile, which passes -opaque and disables@.\
      \ cross-module inlining — throughput and allocation figures are pessimistic.@.\
      \ Re-run with `dune exec --profile release bench/main.exe -- perf` for the@.\
      \ numbers a release build gets.@."
      Build_profile.profile;
  (* wall-clock on a shared host is noisy; the best of 7 repeats is
     stable to a few percent where the best of 3 swung by 20% *)
  let runs = if quick then 1 else 7 in
  let cells =
    List.concat_map
      (fun (name, src, v2_source) ->
        List.map
          (fun abi ->
            let src =
              match (abi, v2_source) with
              | Abi.Cheri Cheri_core.Cap_ops.V2, Some s -> s
              | _ -> src
            in
            perf_cell ~runs name abi src)
          Abi.all)
      (perf_workloads ~quick)
  in
  (* agreement gate: the ABIs of one workload must produce identical
     output — a throughput optimisation that changes observable
     behaviour is a miscompilation, not a speedup *)
  let rec gate = function
    | a :: b :: c :: rest ->
        if not (a.p_digest = b.p_digest && b.p_digest = c.p_digest) then
          raise
            (W.Runner.Run_failed
               (Printf.sprintf "perf %s: ABI outputs diverge" a.p_workload));
        gate rest
    | [] -> ()
    | _ -> assert false
  in
  gate cells;
  Format.fprintf ppf "%-18s%-10s%12s%12s%14s%12s%14s@." "WORKLOAD" "ABI" "cycles" "instret"
    "insn/s" "words/insn" "decode ms/ki";
  List.iter
    (fun c ->
      Format.fprintf ppf "%-18s%-10s%12d%12d%14.0f%12.2f%14.3f@." c.p_workload (Abi.name c.p_abi)
        c.p_cycles c.p_instret c.p_insn_per_s c.p_words_per_insn c.p_decode_ms_per_kinsn)
    cells;
  let dhry_v3 =
    List.find
      (fun c -> c.p_workload = "Dhrystone" && c.p_abi = Abi.Cheri Cheri_core.Cap_ops.V3)
      cells
  in
  let speedup = dhry_v3.p_insn_per_s /. baseline_insn_per_s in
  Format.fprintf ppf
    "Dhrystone CHERIv3: %.0f insn/s, %.2f minor words/insn (pre-PR baseline %.0f insn/s, %.2f words/insn; %.2fx)@."
    dhry_v3.p_insn_per_s dhry_v3.p_words_per_insn baseline_insn_per_s
    baseline_minor_words_per_insn speedup;
  if quick then
    Format.fprintf ppf "(quick mode: 1 run per cell at test scales — smoke only,@.\
                       \ speedup vs the default-scale baseline is indicative)@.";
  let body =
    Printf.sprintf
      "{\n\
      \  \"schema\": \"cheri_c.bench-perf/v1\",\n\
      \  \"clock_hz\": 100000000,\n\
      \  \"profile\": \"%s\",\n\
      \  \"quick\": %b,\n\
      \  \"runs_per_cell\": %d,\n\
      \  \"baseline\": {\"workload\":\"Dhrystone\",\"abi\":\"CHERIv3\",\"insn_per_s\":%.0f,\"minor_words_per_insn\":%.2f},\n\
      \  \"dhrystone_v3\": {\"insn_per_s\":%.0f,\"minor_words_per_insn\":%.3f,\"speedup_vs_baseline\":%.2f},\n\
      \  \"results\": [\n%s\n  ]\n\
       }\n"
      (Json.escape Build_profile.profile)
      quick runs baseline_insn_per_s baseline_minor_words_per_insn dhry_v3.p_insn_per_s
      dhry_v3.p_words_per_insn speedup
      (String.concat ",\n" (List.map perf_cell_json cells))
  in
  let oc = open_out path in
  output_string oc body;
  close_out oc;
  Format.fprintf ppf "wrote %s (%d measurements)@." path (List.length cells)

(* -- fault-injection detection matrix (inject subcommand) --------------------- *)

(* The full campaign behind BENCH_PR3.json: every builtin workload x
   every ABI x every fault kind x 8 seeds. Like the json sweep, the
   report is bit-identical whatever --jobs is (fault parameters derive
   only from the task key), so only wall-clock varies. *)
let bench_inject path =
  section "Fault-injection detection matrix (full campaign)";
  let c = Inject.default_campaign ~seeds:8 () in
  let n_tasks =
    List.length c.Inject.c_workloads * 3 * List.length c.Inject.c_kinds * c.Inject.c_seeds
  in
  Format.fprintf ppf "running %d injection tasks on %d domain(s)...@." n_tasks !jobs;
  let report = Inject.run ~jobs:!jobs c in
  Inject.pp_report ppf report;
  let oc = open_out path in
  output_string oc (Inject.report_json report);
  close_out oc;
  Format.fprintf ppf "wrote %s (%d records)@." path (List.length report.Inject.r_records);
  if report.Inject.r_errors <> [] then exit 1

(* -- snapshot save/restore benchmark (snap subcommand) ------------------------- *)

(* This PR's artifact: snapshot image size and save/restore latency for
   every workload, plus the slicing throughput tax. Each cell preempts
   a run at half its retired-instruction count, persists it, restores
   the image into a fresh machine, and finishes both the original and
   the copy — asserting all three runs (uninterrupted, continued,
   restored) agree on cycles, instret and output before any number is
   reported. *)
let snap_output_file = "BENCH_PR5.json"

module Snapshot = Cheri_snapshot.Snapshot

type snap_cell = {
  n_workload : string;
  n_bytes : int;
  n_instret_at : int;  (* retired instructions at the snapshot point *)
  n_instret : int;     (* retired instructions of the whole program *)
  n_save_ms : float;
  n_restore_ms : float;
}

let best_of n f = List.fold_left min infinity (List.init n (fun _ -> f ()))

let snap_cell ~runs name abi src =
  let fail fmt = Format.kasprintf (fun s -> raise (W.Runner.Run_failed s)) fmt in
  let linked = Cheri_compiler.Codegen.compile_source abi src in
  let fresh () = Cheri_compiler.Codegen.machine_for abi linked in
  let finish what m =
    match Machine.run m with
    | Machine.Exit 0L -> ()
    | o -> fail "snap %s (%s): %a" name what Machine.pp_outcome o
  in
  (* reference observables from an uninterrupted run *)
  let r = fresh () in
  finish "reference" r;
  let ref_cycles = Machine.cycles r and ref_instret = Machine.instret r in
  let ref_output = Machine.output r in
  (* preempt a second machine at the midpoint *)
  let at = ref_instret / 2 in
  let m = fresh () in
  (match Machine.run ~fuel:at ~yield:true m with
  | Machine.Yielded -> ()
  | o -> fail "snap %s: finished (%a) before the midpoint" name Machine.pp_outcome o);
  let path = Filename.temp_file "cheri-snap-bench" ".snap" in
  let abi_name = Abi.name abi in
  let bytes = ref 0 in
  let save_ms =
    best_of runs (fun () ->
        let t0 = Unix.gettimeofday () in
        (match Snapshot.save ~abi:abi_name ~path m with
        | Ok n -> bytes := n
        | Error e -> fail "snap %s: save: %s" name (Snapshot.error_to_string e));
        (Unix.gettimeofday () -. t0) *. 1e3)
  in
  let restored = ref None in
  let restore_ms =
    best_of runs (fun () ->
        let m2 = fresh () in
        let t0 = Unix.gettimeofday () in
        (match Snapshot.load path with
        | Error e -> fail "snap %s: load: %s" name (Snapshot.error_to_string e)
        | Ok img -> (
            match Snapshot.restore m2 ~abi:abi_name img with
            | Error e -> fail "snap %s: restore: %s" name (Snapshot.error_to_string e)
            | Ok () -> ()));
        let dt = (Unix.gettimeofday () -. t0) *. 1e3 in
        restored := Some m2;
        dt)
  in
  Sys.remove path;
  (* equivalence gate: both the preempted original and the restored
     copy must finish with the reference's observables *)
  finish "continued" m;
  let m2 = Option.get !restored in
  finish "restored" m2;
  List.iter
    (fun (what, mm) ->
      if
        Machine.cycles mm <> ref_cycles
        || Machine.instret mm <> ref_instret
        || Machine.output mm <> ref_output
      then fail "snap %s: %s run diverged from the uninterrupted run" name what)
    [ ("continued", m); ("restored", m2) ];
  {
    n_workload = name;
    n_bytes = !bytes;
    n_instret_at = at;
    n_instret = ref_instret;
    n_save_ms = save_ms;
    n_restore_ms = restore_ms;
  }

(* the slicing tax: the same program run flat-out vs in preemptive
   fuel slices; both must retire the same instruction count *)
let snap_throughput ~runs ~slice abi src =
  let fail fmt = Format.kasprintf (fun s -> raise (W.Runner.Run_failed s)) fmt in
  let linked = Cheri_compiler.Codegen.compile_source abi src in
  let fresh () = Cheri_compiler.Codegen.machine_for abi linked in
  ignore (Machine.run (fresh ()));
  (* warm-up *)
  let time_run sliced =
    let m = fresh () in
    let t0 = Unix.gettimeofday () in
    (if not sliced then
       match Machine.run m with
       | Machine.Exit 0L -> ()
       | o -> fail "snap throughput: %a" Machine.pp_outcome o
     else
       let rec go () =
         match Machine.run ~fuel:slice ~yield:true m with
         | Machine.Yielded -> go ()
         | Machine.Exit 0L -> ()
         | o -> fail "snap throughput (sliced): %a" Machine.pp_outcome o
       in
       go ());
    float_of_int (Machine.instret m) /. (Unix.gettimeofday () -. t0)
  in
  let best f = List.fold_left max 0. (List.init runs (fun _ -> f ())) in
  (best (fun () -> time_run false), best (fun () -> time_run true))

let snap_cell_json c =
  Printf.sprintf
    "    {\"workload\":\"%s\",\"bytes\":%d,\"instret_at_snapshot\":%d,\"instret\":%d,\"save_ms\":%.3f,\"restore_ms\":%.3f}"
    (Json.escape c.n_workload)
    c.n_bytes c.n_instret_at c.n_instret c.n_save_ms c.n_restore_ms

let bench_snap ~quick path =
  section
    (if quick then "Snapshot save/restore (snap --quick, test scales)"
     else "Snapshot save/restore (snap, default scales)");
  if Build_profile.profile <> "release" then
    Format.fprintf ppf
      "WARNING: built with the %s profile — save/restore latency and the@.\
      \ slicing tax are pessimistic. Re-run with `dune exec --profile release@.\
      \ bench/main.exe -- snap` for the numbers a release build gets.@."
      Build_profile.profile;
  let abi = Abi.Cheri Cheri_core.Cap_ops.V3 in
  (* wall-clock on a shared host is noisy; the best of 7 repeats is
     stable to a few percent where the best of 3 swung by 20% *)
  let runs = if quick then 1 else 7 in
  let cells =
    List.map (fun (name, src, _) -> snap_cell ~runs name abi src) (perf_workloads ~quick)
  in
  Format.fprintf ppf "%-18s%12s%16s%12s%12s@." "WORKLOAD" "bytes" "instret@snap"
    "save ms" "restore ms";
  List.iter
    (fun c ->
      Format.fprintf ppf "%-18s%12d%16d%12.3f%12.3f@." c.n_workload c.n_bytes c.n_instret_at
        c.n_save_ms c.n_restore_ms)
    cells;
  (* slicing tax on the longest-running workload *)
  let slice = 1_000_000 in
  let dhry =
    if quick then W.Dhrystone.source { W.Dhrystone.iterations = 500 }
    else W.Dhrystone.source W.Dhrystone.default
  in
  let plain, sliced = snap_throughput ~runs ~slice abi dhry in
  let ratio = sliced /. plain in
  Format.fprintf ppf
    "Dhrystone CHERIv3: %.0f insn/s flat, %.0f insn/s in %d-instruction slices (%.3fx)@."
    plain sliced slice ratio;
  let body =
    Printf.sprintf
      "{\n\
      \  \"schema\": \"cheri_c.snap-bench/v1\",\n\
      \  \"profile\": \"%s\",\n\
      \  \"quick\": %b,\n\
      \  \"runs_per_cell\": %d,\n\
      \  \"abi\": \"%s\",\n\
      \  \"slicing\": {\"workload\":\"Dhrystone\",\"slice\":%d,\"insn_per_s_flat\":%.0f,\"insn_per_s_sliced\":%.0f,\"ratio\":%.4f},\n\
      \  \"results\": [\n%s\n  ]\n\
       }\n"
      (Json.escape Build_profile.profile)
      quick runs
      (Json.escape (Abi.name abi))
      slice plain sliced ratio
      (String.concat ",\n" (List.map snap_cell_json cells))
  in
  let oc = open_out path in
  output_string oc body;
  close_out oc;
  Format.fprintf ppf "wrote %s (%d measurements)@." path (List.length cells)

(* -- multi-tenant service benchmark (serve subcommand) ------------------------- *)

let serve_output_file = "BENCH_PR8.json"

let bench_serve ~quick path =
  let module Service = Cheri_service.Service in
  let module Chaos = Cheri_service.Chaos in
  section
    (if quick then "Multi-tenant service (serve --quick, test scales)"
     else "Multi-tenant service (serve, default scales)");
  if Build_profile.profile <> "release" then
    Format.fprintf ppf
      "WARNING: built with the %s profile — sustained throughput and latency@.\
      \ are pessimistic. Re-run with `dune exec --profile release@.\
      \ bench/main.exe -- serve` for the numbers a release build gets.@."
      Build_profile.profile;
  let mem_int k j = Option.bind (Json.member k j) Json.to_int in
  let mem_bool k j = Option.bind (Json.member k j) Json.to_bool in
  let mem_str k j = Option.bind (Json.member k j) Json.to_string in
  let now = Unix.gettimeofday in
  let dir = Printf.sprintf "/tmp/cheri-serve-bench-%d" (Unix.getpid ()) in
  Chaos.rm_rf dir;
  let tenants = if quick then 8 else 24 in
  let recovery_batch = if quick then 6 else 12 in
  let cfg =
    {
      (Service.default_config ~dir) with
      Service.workers = 2;
      worker_jobs = 1;
      capacity = (tenants + recovery_batch) * 2;
      slice = 50_000;
      fuel = 50_000_000;
      heartbeat_s = 0.25;
      tick_s = 0.02;
      seed = 1;
    }
  in
  let srv_pid = Chaos.Client.spawn_server cfg in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill srv_pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] srv_pid) with Unix.Unix_error _ -> ());
      Chaos.rm_rf dir)
    (fun () ->
      if not (Chaos.Client.wait_socket cfg.Service.socket ~timeout_s:10.0) then
        failwith "serve bench: server socket never came up";
      let cl = Chaos.Client.connect cfg.Service.socket in
      let request j =
        match Chaos.Client.request cl j with
        | Ok r -> r
        | Error e -> failwith ("serve bench: request failed: " ^ e)
      in
      let submit ~seed i =
        let r =
          request
            (Json.Obj
               [
                 ("op", Json.Str "submit");
                 ("source", Json.Str (Chaos.tenant_source ~seed ~index:i));
                 ("abi", Json.Str [| "mips"; "cheriv2"; "cheriv3" |].(i mod 3));
                 ("fuel", Json.Num (string_of_int cfg.Service.fuel));
                 ("slice", Json.Num (string_of_int cfg.Service.slice));
               ])
        in
        match mem_int "tenant" r with
        | Some tid -> tid
        | None -> failwith ("serve bench: submit rejected: " ^ Json.encode r)
      in
      let poll tid = request (Json.Obj [ ("op", Json.Str "poll"); ("tenant", Json.Num (string_of_int tid)) ]) in
      (* phase 1: sustained throughput + client-observed latency *)
      let t0 = now () in
      let batch1 = Array.init tenants (fun i -> (submit ~seed:1 i, ref None)) in
      let deadline = now () +. 300.0 in
      let unfinished () = Array.exists (fun (_, r) -> !r = None) batch1 in
      while unfinished () do
        if now () > deadline then failwith "serve bench: sustained phase timed out";
        Array.iter
          (fun (tid, r) ->
            if !r = None then
              let p = poll tid in
              match mem_str "state" p with
              | Some "done" -> r := Some (now () -. t0)
              | Some "failed" -> failwith ("serve bench: tenant failed: " ^ Json.encode p)
              | _ -> ())
          batch1;
        ignore (Unix.select [] [] [] 0.005)
      done;
      let wall = now () -. t0 in
      let lats =
        Array.to_list batch1 |> List.filter_map (fun (_, r) -> Option.map (fun x -> x *. 1000.) !r)
      in
      let jobs_per_s = float_of_int tenants /. wall in
      let p50_ms = Obs.quantile_of lats 0.5 in
      let p99_ms = Obs.quantile_of lats 0.99 in
      Format.fprintf ppf "sustained: %d tenants over 2 workers in %.2fs — %.2f jobs/s, p50 %.0f ms, p99 %.0f ms@."
        tenants wall jobs_per_s p50_ms p99_ms;
      (* phase 2: SIGKILL the busiest worker mid-batch; recovery time is
         kill -> first completion of a tenant that was requeued by it *)
      let batch2 = Array.init recovery_batch (fun i -> (submit ~seed:77 (1000 + i), ref None)) in
      let done2 () = Array.fold_left (fun a (_, r) -> if !r = None then a else a + 1) 0 batch2 in
      let killed = ref false in
      let t_kill = ref 0.0 in
      let recovery_ms = ref None in
      let deadline = now () +. 300.0 in
      while Array.exists (fun (_, r) -> !r = None) batch2 do
        if now () > deadline then failwith "serve bench: recovery phase timed out";
        if (not !killed) && done2 () >= recovery_batch / 4 then begin
          let st = request (Json.Obj [ ("op", Json.Str "stats") ]) in
          match Json.member "workers" st with
          | Some (Json.Arr ws) ->
              let busiest =
                List.fold_left
                  (fun acc w ->
                    match (mem_bool "alive" w, mem_int "pid" w, mem_int "tenants" w) with
                    | Some true, Some pid, Some n when n >= 1 -> (
                        match acc with Some (_, bn) when bn >= n -> acc | _ -> Some (pid, n))
                    | _ -> acc)
                  None ws
              in
              (match busiest with
              | Some (pid, _) ->
                  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
                  t_kill := now ();
                  killed := true
              | None -> ())
          | _ -> ()
        end;
        Array.iter
          (fun (tid, r) ->
            if !r = None then
              let p = poll tid in
              match mem_str "state" p with
              | Some "done" ->
                  r := Some (now ());
                  let restarts =
                    Option.value ~default:0
                      (Option.bind (Json.member "result" p) (mem_int "restarts"))
                  in
                  if !killed && !recovery_ms = None && restarts >= 1 then
                    recovery_ms := Some ((now () -. !t_kill) *. 1000.)
              | Some "failed" -> failwith ("serve bench: tenant failed: " ^ Json.encode p)
              | _ -> ())
          batch2;
        ignore (Unix.select [] [] [] 0.005)
      done;
      let recovery_ms =
        match !recovery_ms with
        | Some r -> r
        | None ->
            (* the killed worker held no tenant that outlived it; fall
               back to kill -> batch drained *)
            if !killed then (now () -. !t_kill) *. 1000. else 0.0
      in
      Format.fprintf ppf "recovery: first requeued tenant completed %.0f ms after SIGKILL@."
        recovery_ms;
      ignore (request (Json.Obj [ ("op", Json.Str "shutdown") ]));
      Chaos.Client.close cl;
      let body =
        Printf.sprintf
          "{\n\
          \  \"schema\": \"cheri_c.serve-bench/v1\",\n\
          \  \"profile\": \"%s\",\n\
          \  \"quick\": %b,\n\
          \  \"workers\": %d,\n\
          \  \"results\": [\n\
          \    {\"workload\":\"sustained\",\"tenants\":%d,\"jobs_per_s\":%.3f,\"p50_ms\":%.1f,\"p99_ms\":%.1f},\n\
          \    {\"workload\":\"recovery\",\"tenants\":%d,\"recovery_ms\":%.1f}\n\
          \  ]\n\
           }\n"
          (Json.escape Build_profile.profile)
          quick cfg.Service.workers tenants jobs_per_s p50_ms p99_ms recovery_batch recovery_ms
      in
      let oc = open_out path in
      output_string oc body;
      close_out oc;
      Format.fprintf ppf "wrote %s (2 measurements)@." path)

(* -- sharded-fleet service benchmark (serve --shards) -------------------------- *)

let serve_fleet_output_file = "BENCH_PR10.json"

(* Same shape as [bench_serve] but against a router fleet: phase 1
   measures sustained throughput and client-observed latency across
   the shards, phase 2 SIGKILLs a whole shard (supervisor + workers)
   and times recovery as kill -> first completion carrying a nonzero
   migration lineage, phase 3 runs repeated admin drain + rebalance
   cycles under load and reports drain latency (drain request ->
   manifest absorbed) and per-tenant migration latency (drain request
   -> tenant observed running on a surviving shard, or done)
   percentiles. The drain/migration cells are new to the
   cheri_c.serve-bench family; compare ignores cells absent from the
   OLD file, so BENCH_PR8 -> BENCH_PR10 gates only the shared
   sustained/recovery metrics. *)
let bench_serve_fleet ~quick ~shards path =
  let module Service = Cheri_service.Service in
  let module Router = Cheri_service.Router in
  let module Chaos = Cheri_service.Chaos in
  let shards = max 3 shards in
  section
    (Printf.sprintf "Sharded fleet service (serve --shards %d%s)" shards
       (if quick then " --quick, test scales" else ", default scales"));
  if Build_profile.profile <> "release" then
    Format.fprintf ppf
      "WARNING: built with the %s profile — sustained throughput and latency@.\
      \ are pessimistic. Re-run with `dune exec --profile release@.\
      \ bench/main.exe -- serve --shards` for the numbers a release build gets.@."
      Build_profile.profile;
  let mem_int k j = Option.bind (Json.member k j) Json.to_int in
  let mem_bool k j = Option.bind (Json.member k j) Json.to_bool in
  let mem_str k j = Option.bind (Json.member k j) Json.to_string in
  let now = Unix.gettimeofday in
  let dir = Printf.sprintf "/tmp/cheri-fleet-bench-%d" (Unix.getpid ()) in
  Chaos.rm_rf dir;
  let tenants = if quick then 8 else 18 in
  let recovery_batch = if quick then 6 else 10 in
  let drain_cycles = if quick then 3 else 6 in
  let rcfg =
    {
      (Router.default_rconfig ~dir) with
      Router.r_shards = shards;
      r_workers = 1;
      r_worker_jobs = 1;
      r_capacity = (tenants + recovery_batch) * 2;
      r_slice = 50_000;
      r_fuel = 50_000_000;
      r_heartbeat_s = 0.25;
      r_status_s = 0.25;
      r_tick_s = 0.02;
      r_take_s = 0.05;
      r_seed = 1;
    }
  in
  let rt_pid = Chaos.Client.spawn_router rcfg in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill rt_pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] rt_pid) with Unix.Unix_error _ -> ());
      Chaos.rm_rf dir)
    (fun () ->
      if not (Chaos.Client.wait_socket rcfg.Router.r_socket ~timeout_s:15.0) then
        failwith "fleet bench: router socket never came up";
      let cl = Chaos.Client.connect rcfg.Router.r_socket in
      let request j =
        match Chaos.Client.request cl j with
        | Ok r -> r
        | Error e -> failwith ("fleet bench: request failed: " ^ e)
      in
      let submit ~seed i =
        let r =
          request
            (Json.Obj
               [
                 ("op", Json.Str "submit");
                 ("source", Json.Str (Chaos.tenant_source ~seed ~index:i));
                 ("abi", Json.Str [| "mips"; "cheriv2"; "cheriv3" |].(i mod 3));
                 ("fuel", Json.Num (string_of_int rcfg.Router.r_fuel));
                 ("slice", Json.Num (string_of_int rcfg.Router.r_slice));
               ])
        in
        match mem_int "tenant" r with
        | Some tid -> tid
        | None -> failwith ("fleet bench: submit rejected: " ^ Json.encode r)
      in
      let poll tid =
        request (Json.Obj [ ("op", Json.Str "poll"); ("tenant", Json.Num (string_of_int tid)) ])
      in
      let stats () = request (Json.Obj [ ("op", Json.Str "stats") ]) in
      let shard_rows st =
        match Json.member "shards" st with Some (Json.Arr rows) -> rows | _ -> []
      in
      (* busiest shard that is up, admitting and holding work *)
      let busiest_shard st =
        List.fold_left
          (fun acc row ->
            match
              ( mem_int "id" row,
                mem_int "pid" row,
                mem_bool "alive" row,
                mem_bool "draining" row,
                mem_bool "held" row,
                mem_int "tenants" row )
            with
            | Some id, Some pid, Some true, Some false, Some false, Some n when n >= 1 -> (
                match acc with Some (_, _, bn) when bn >= n -> acc | _ -> Some (id, pid, n))
            | _ -> acc)
          None (shard_rows st)
      in
      (* phase 1: sustained throughput + client-observed latency *)
      let t0 = now () in
      let batch1 = Array.init tenants (fun i -> (submit ~seed:1 i, ref None)) in
      let deadline = now () +. 300.0 in
      while Array.exists (fun (_, r) -> !r = None) batch1 do
        if now () > deadline then failwith "fleet bench: sustained phase timed out";
        Array.iter
          (fun (tid, r) ->
            if !r = None then
              let p = poll tid in
              match mem_str "state" p with
              | Some "done" -> r := Some (now () -. t0)
              | Some "failed" -> failwith ("fleet bench: tenant failed: " ^ Json.encode p)
              | _ -> ())
          batch1;
        ignore (Unix.select [] [] [] 0.005)
      done;
      let wall = now () -. t0 in
      let lats =
        Array.to_list batch1 |> List.filter_map (fun (_, r) -> Option.map (fun x -> x *. 1000.) !r)
      in
      let jobs_per_s = float_of_int tenants /. wall in
      let p50_ms = Obs.quantile_of lats 0.5 in
      let p99_ms = Obs.quantile_of lats 0.99 in
      Format.fprintf ppf
        "sustained: %d tenants over %d shards in %.2fs — %.2f jobs/s, p50 %.0f ms, p99 %.0f ms@."
        tenants shards wall jobs_per_s p50_ms p99_ms;
      (* phase 2: SIGKILL the busiest whole shard mid-batch; recovery is
         kill -> first completion that carries a migration lineage *)
      let batch2 = Array.init recovery_batch (fun i -> (submit ~seed:77 (1000 + i), ref None)) in
      let done2 () = Array.fold_left (fun a (_, r) -> if !r = None then a else a + 1) 0 batch2 in
      let killed = ref false in
      let t_kill = ref 0.0 in
      let recovery_ms = ref None in
      let deadline = now () +. 300.0 in
      while Array.exists (fun (_, r) -> !r = None) batch2 do
        if now () > deadline then failwith "fleet bench: recovery phase timed out";
        (if (not !killed) && done2 () >= recovery_batch / 4 then
           match busiest_shard (stats ()) with
           | Some (_, pid, _) ->
               (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
               t_kill := now ();
               killed := true
           | None -> ());
        Array.iter
          (fun (tid, r) ->
            if !r = None then
              let p = poll tid in
              match mem_str "state" p with
              | Some "done" ->
                  r := Some (now ());
                  let migrations =
                    Option.value ~default:0
                      (Option.bind (Json.member "result" p) (mem_int "migrations"))
                  in
                  if !killed && !recovery_ms = None && migrations >= 1 then
                    recovery_ms := Some ((now () -. !t_kill) *. 1000.)
              | Some "failed" -> failwith ("fleet bench: tenant failed: " ^ Json.encode p)
              | _ -> ())
          batch2;
        ignore (Unix.select [] [] [] 0.005)
      done;
      let recovery_ms =
        match !recovery_ms with
        | Some r -> r
        | None ->
            (* the killed shard held no tenant that outlived it *)
            if !killed then (now () -. !t_kill) *. 1000. else 0.0
      in
      Format.fprintf ppf "recovery: first migrated tenant completed %.0f ms after shard SIGKILL@."
        recovery_ms;
      (* phase 3: drain + rebalance cycles under load; drain latency is
         drain request -> drains counter bump (the shard's manifest was
         absorbed), migration latency is drain request -> each parked
         tenant observed off the drained shard *)
      let drain_samples = ref [] in
      let mig_samples = ref [] in
      let cycle = ref 0 in
      let next_gid = ref 2000 in
      let deadline = now () +. 300.0 in
      while !cycle < drain_cycles && now () < deadline do
        incr cycle;
        let batch =
          Array.init 4 (fun _ ->
              incr next_gid;
              submit ~seed:9 !next_gid)
        in
        (* wait until one shard actually holds work, then drain it *)
        let victim = ref None in
        let spin_deadline = now () +. 30.0 in
        while !victim = None && now () < spin_deadline do
          (match busiest_shard (stats ()) with
          | Some (id, _, _) -> victim := Some id
          | None -> ());
          if !victim = None then ignore (Unix.select [] [] [] 0.005)
        done;
        match !victim with
        | None -> () (* the batch drained before any shard was observed busy *)
        | Some k ->
            let on_k =
              Array.to_list batch
              |> List.filter (fun tid ->
                     let p = poll tid in
                     mem_str "state" p = Some "running" && mem_int "shard" p = Some k)
            in
            let drains_before =
              Option.value ~default:0 (mem_int "drains" (stats ()))
            in
            let t_drain = now () in
            let r = request (Json.Obj [ ("op", Json.Str "drain"); ("shard", Json.Num (string_of_int k)) ]) in
            if mem_bool "ok" r <> Some true then
              failwith ("fleet bench: drain rejected: " ^ Json.encode r);
            let drained = ref false in
            while (not !drained) && now () < deadline do
              if Option.value ~default:0 (mem_int "drains" (stats ())) > drains_before then
                drained := true
              else ignore (Unix.select [] [] [] 0.005)
            done;
            if !drained then drain_samples := ((now () -. t_drain) *. 1000.) :: !drain_samples;
            (* each tenant that was parked: time until it left shard k *)
            List.iter
              (fun tid ->
                let moved = ref false in
                while (not !moved) && now () < deadline do
                  let p = poll tid in
                  match (mem_str "state" p, mem_int "shard" p) with
                  | Some "done", _ | Some "running", Some _ when mem_int "shard" p <> Some k ->
                      moved := true;
                      mig_samples := ((now () -. t_drain) *. 1000.) :: !mig_samples
                  | Some "failed", _ -> failwith ("fleet bench: tenant failed: " ^ Json.encode p)
                  | _ -> ignore (Unix.select [] [] [] 0.005)
                done)
              on_k;
            (* revive the held slot so the next cycle has a full fleet *)
            let r = request (Json.Obj [ ("op", Json.Str "rebalance") ]) in
            if mem_bool "ok" r <> Some true then
              failwith ("fleet bench: rebalance rejected: " ^ Json.encode r);
            let revived = ref false in
            while (not !revived) && now () < deadline do
              let alive k' =
                List.exists
                  (fun row -> mem_int "id" row = Some k' && mem_bool "alive" row = Some true)
                  (shard_rows (stats ()))
              in
              if alive k then revived := true else ignore (Unix.select [] [] [] 0.01)
            done
      done;
      let drain_p50 = Obs.quantile_of !drain_samples 0.5 in
      let drain_p99 = Obs.quantile_of !drain_samples 0.99 in
      let mig_p50 = Obs.quantile_of !mig_samples 0.5 in
      let mig_p99 = Obs.quantile_of !mig_samples 0.99 in
      Format.fprintf ppf
        "drain: %d cycles — p50 %.0f ms, p99 %.0f ms; migration: %d tenants — p50 %.0f ms, p99 %.0f \
         ms@."
        (List.length !drain_samples) drain_p50 drain_p99 (List.length !mig_samples) mig_p50 mig_p99;
      ignore (request (Json.Obj [ ("op", Json.Str "shutdown") ]));
      Chaos.Client.close cl;
      let body =
        Printf.sprintf
          "{\n\
          \  \"schema\": \"cheri_c.serve-bench/v1\",\n\
          \  \"profile\": \"%s\",\n\
          \  \"quick\": %b,\n\
          \  \"shards\": %d,\n\
          \  \"workers\": %d,\n\
          \  \"results\": [\n\
          \    {\"workload\":\"sustained\",\"tenants\":%d,\"jobs_per_s\":%.3f,\"p50_ms\":%.1f,\"p99_ms\":%.1f},\n\
          \    {\"workload\":\"recovery\",\"tenants\":%d,\"recovery_ms\":%.1f},\n\
          \    {\"workload\":\"drain\",\"cycles\":%d,\"p50_ms\":%.1f,\"p99_ms\":%.1f},\n\
          \    {\"workload\":\"migration\",\"samples\":%d,\"p50_ms\":%.1f,\"p99_ms\":%.1f}\n\
          \  ]\n\
           }\n"
          (Json.escape Build_profile.profile)
          quick shards rcfg.Router.r_workers tenants jobs_per_s p50_ms p99_ms recovery_batch
          recovery_ms
          (List.length !drain_samples)
          drain_p50 drain_p99
          (List.length !mig_samples)
          mig_p50 mig_p99
      in
      let oc = open_out path in
      output_string oc body;
      close_out oc;
      Format.fprintf ppf "wrote %s (4 measurements)@." path)

(* -- telemetry overhead smoke checks (smoke subcommand) ------------------------ *)

(* A short program with real memory traffic for the overhead check. *)
let smoke_src =
  {|
int main(void) {
  long *tab = (long *)malloc(8 * 64);
  long acc = 0;
  for (long r = 0; r < 2000; r++) {
    for (long i = 0; i < 64; i++) {
      tab[i] = acc + i;
      acc = acc + tab[i];
    }
  }
  print_int(acc & 1023);
  return 0;
}
|}

let timed f =
  let t0 = Sys.time () in
  let r = f () in
  (r, Sys.time () -. t0)

let smoke () =
  section "Telemetry smoke checks (null-sink zero-cost guarantees)";
  let abi = Abi.Cheri Cheri_core.Cap_ops.V3 in
  let linked = Cheri_compiler.Codegen.compile_source abi smoke_src in
  let fresh () = Cheri_compiler.Codegen.machine_for abi linked in
  (* 1. telemetry must not perturb the simulation: identical
     architectural results with the null sink and with a live sink *)
  let m_null = fresh () in
  let o_null = Machine.run m_null in
  let m_traced = fresh () in
  let sink = Telemetry.Sink.create ~capacity:1024 () in
  Machine.set_sink m_traced sink;
  let o_traced = Machine.run m_traced in
  assert (o_null = o_traced);
  let s_null = Machine.stats m_null and s_traced = Machine.stats m_traced in
  assert (s_null = s_traced);
  assert (Machine.output m_null = Machine.output m_traced);
  Format.fprintf ppf "architectural state identical with/without telemetry: ok@.";
  (* 2. the null sink records nothing and the live sink saw the run *)
  assert (Telemetry.Sink.total_events (Machine.sink m_null) = 0);
  assert (Telemetry.Sink.total_events sink > s_traced.Machine.st_instret - 1);
  assert (Telemetry.Sink.opcode_count sink Telemetry.Op_syscall > 0);
  Format.fprintf ppf "null sink recorded 0 events; live sink recorded %d: ok@."
    (Telemetry.Sink.total_events sink);
  (* 3. host-time overhead: the disabled path is the seed's dispatch
     loop plus one cached-bool branch per retired instruction; assert
     the expected ordering (tracing costs more than not tracing) and
     report per-instruction numbers for the record. Warm up once to
     fault in code paths before timing. *)
  ignore (Machine.run (fresh ()));
  let time_run with_sink =
    let m = fresh () in
    if with_sink then Machine.set_sink m (Telemetry.Sink.create ~capacity:1024 ());
    let o, dt = timed (fun () -> Machine.run m) in
    assert (o = Machine.Exit 0L);
    dt /. float_of_int (Machine.stats m).Machine.st_instret
  in
  let best f = List.fold_left min infinity (List.init 3 (fun _ -> f ())) in
  let ns_null = best (fun () -> time_run false) *. 1e9 in
  let ns_traced = best (fun () -> time_run true) *. 1e9 in
  Format.fprintf ppf "step loop: %.1f ns/insn with null sink, %.1f ns/insn traced (%.2fx)@."
    ns_null ns_traced (ns_traced /. ns_null);
  if ns_traced < ns_null then
    Format.fprintf ppf "(timing inversion under load; counters above remain authoritative)@.";
  Format.fprintf ppf "smoke ok@."

(* -- Bechamel microbenchmarks -------------------------------------------------- *)

let micro () =
  section "Bechamel microbenchmarks (host-native substrate performance)";
  let open Bechamel in
  let cap = Cheri_core.Capability.make ~base:0x1000L ~length:0x1000L ~perms:Cheri_core.Perms.all in
  let mem = Cheri_tagmem.Tagmem.create ~size_bytes:(1 lsl 16) () in
  let hierarchy = Cheri_isa.Cache.Timing.create Cheri_isa.Cache.Timing.paper_config in
  let loop_machine () =
    let b = Cheri_asm.Asm.Builder.create () in
    let e = Cheri_asm.Asm.Builder.emit b in
    e (Cheri_isa.Insn.Li (8, Cheri_isa.Insn.Imm 0L));
    Cheri_asm.Asm.Builder.label b "loop";
    e (Cheri_isa.Insn.Alui (Cheri_isa.Insn.ADD, 8, 8, Cheri_isa.Insn.Imm 1L));
    e (Cheri_isa.Insn.Alui (Cheri_isa.Insn.SLT, 9, 8, Cheri_isa.Insn.Imm 1000L));
    e (Cheri_isa.Insn.Branchz (Cheri_isa.Insn.NEZ, 9, Cheri_isa.Insn.Sym "loop"));
    e Cheri_isa.Insn.Halt;
    Cheri_asm.Asm.make_machine (Cheri_asm.Asm.link b)
  in
  let interp_src = "int main(void) { long s = 0; for (int i = 0; i < 200; i++) s += i; return s & 255; }" in
  let tests =
    [
      (* one Test.make per paper table/figure pipeline, plus substrate ops *)
      Test.make ~name:"t3/idiom-classify (CHERIv3 x DECONST)" (Staged.stage (fun () ->
           Cheri_interp.Table3.classify Cheri_models.Registry.cheriv3 Cheri_interp.Idiom_cases.Deconst));
      Test.make ~name:"t1/analyze-small-package" (Staged.stage (fun () ->
           A.Finder.analyze_source (A.Corpus.generate ~scale:500 (List.hd A.Corpus.paper_table1)).A.Corpus.source));
      Test.make ~name:"t4/port-audit" (Staged.stage (fun () -> W.Port_audit.table4 ()));
      Test.make ~name:"f1/compile-treeadd-v3" (Staged.stage (fun () ->
           Cheri_compiler.Codegen.compile_source
             (Abi.Cheri Cheri_core.Cap_ops.V3)
             ((List.find (fun k -> k.W.Olden.kname = "TreeAdd") W.Olden.kernels).W.Olden.source
                { W.Olden.scale = 1 })));
      Test.make ~name:"core/cap-ptr-add-v3" (Staged.stage (fun () ->
           Cheri_core.Cap_ops.ptr_add Cheri_core.Cap_ops.V3 cap 8L));
      Test.make ~name:"core/check-access" (Staged.stage (fun () ->
           Cheri_core.Capability.check_access cap ~addr:0x1800L ~size:8 ~perm:Cheri_core.Perms.Load));
      Test.make ~name:"tagmem/store-load-int" (Staged.stage (fun () ->
           Cheri_tagmem.Tagmem.store_int_i64 mem ~addr:128L ~size:8 42L;
           Cheri_tagmem.Tagmem.load_int_i64 mem ~addr:128L ~size:8));
      Test.make ~name:"tagmem/store-load-cap" (Staged.stage (fun () ->
           Cheri_tagmem.Tagmem.store_cap_i64 mem ~addr:256L cap;
           Cheri_tagmem.Tagmem.load_cap_i64 mem ~addr:256L));
      Test.make ~name:"cache/hierarchy-access" (Staged.stage (fun () ->
           Cheri_isa.Cache.Timing.access_cycles hierarchy 0x4000L ~size:8));
      Test.make ~name:"isa/run-4k-instructions" (Staged.stage (fun () ->
           Cheri_isa.Machine.run (loop_machine ())));
      Test.make ~name:"isa/run-4k-instructions (traced)" (Staged.stage (fun () ->
           let m = loop_machine () in
           Cheri_isa.Machine.set_sink m (Cheri_telemetry.Telemetry.Sink.create ~capacity:1024 ());
           Cheri_isa.Machine.run m));
      Test.make ~name:"interp/pdp11-small-program" (Staged.stage (fun () ->
           Cheri_interp.Interp.run_with Cheri_models.Registry.pdp11 interp_src));
    ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~stabilize:false () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      List.iter
        (fun tst ->
          let results = Benchmark.run cfg instances tst in
          let est = Analyze.one ols Toolkit.Instance.monotonic_clock results in
          match Analyze.OLS.estimates est with
          | Some [ time_per_run ] ->
              Format.fprintf ppf "%-44s %12.1f ns/run@." (Test.Elt.name tst) time_per_run
          | _ -> Format.fprintf ppf "%-44s (no estimate)@." (Test.Elt.name tst))
        (Test.elements test))
    tests

(* -- bench regression gate (compare subcommand) -------------------------------- *)

let read_bench_file path =
  match open_in_bin path with
  | exception Sys_error msg ->
      Format.eprintf "compare: %s@." msg;
      exit 2
  | ic ->
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      s

(* diff OLD NEW; exit 0 when within threshold, 1 on a regression, 2 on
   a malformed or mismatched input *)
let compare_files ~threshold_pct ~quick old_path new_path =
  let old_json = read_bench_file old_path and new_json = read_bench_file new_path in
  match Bench_compare.diff ~threshold_pct ~quick ~old_json ~new_json () with
  | Error msg ->
      Format.eprintf "compare: %s@." msg;
      exit 2
  | Ok outcome ->
      Format.fprintf ppf "compare %s -> %s@.%a@." old_path new_path Bench_compare.pp_outcome
        outcome;
      if outcome.Bench_compare.o_regressed then exit 1

(* the gate must bite: FILE vs itself passes, FILE vs a synthetically
   worsened copy fails on every gated metric *)
let compare_self_test path =
  let json = read_bench_file path in
  (match Bench_compare.diff ~old_json:json ~new_json:json () with
  | Error msg ->
      Format.eprintf "compare --self-test: %s: %s@." path msg;
      exit 2
  | Ok o when o.Bench_compare.o_regressed ->
      Format.eprintf "compare --self-test: %s regressed against itself@." path;
      exit 1
  | Ok o ->
      Format.fprintf ppf "self vs self: %d metrics, none regressed: ok@."
        (List.length o.Bench_compare.o_metrics));
  match Bench_compare.doctor_worsen json with
  | Error msg ->
      Format.eprintf "compare --self-test: doctoring %s failed: %s@." path msg;
      exit 2
  | Ok doctored -> (
      match Bench_compare.diff ~old_json:json ~new_json:doctored () with
      | Error msg ->
          Format.eprintf "compare --self-test: %s@." msg;
          exit 2
      | Ok o ->
          let n = List.length o.Bench_compare.o_metrics in
          let bad = List.filter (fun m -> m.Bench_compare.m_regressed) o.Bench_compare.o_metrics in
          if not o.Bench_compare.o_regressed || List.length bad <> n then begin
            Format.eprintf
              "compare --self-test: 20%% synthetic regression only flagged %d/%d metrics@."
              (List.length bad) n;
            exit 1
          end;
          Format.fprintf ppf "self vs 20%%-worsened self: all %d metrics flagged: ok@." n)

let compare_cmd rest =
  let threshold = ref 10.0 in
  let quick = ref false in
  let selftest = ref None in
  let files = ref [] in
  let rec p = function
    | "--quick" :: r ->
        quick := true;
        p r
    | "--threshold" :: v :: r -> (
        match float_of_string_opt v with
        | Some t when t > 0. ->
            threshold := t;
            p r
        | _ ->
            Format.eprintf "compare: --threshold expects a positive percentage@.";
            exit 2)
    | "--self-test" :: f :: r ->
        selftest := Some f;
        p r
    | [ ("--threshold" | "--self-test") as f ] ->
        Format.eprintf "compare: %s requires an argument@." f;
        exit 2
    | f :: r ->
        files := f :: !files;
        p r
    | [] -> ()
  in
  p rest;
  match (!selftest, List.rev !files) with
  | Some f, [] -> compare_self_test f
  | None, [ old_path; new_path ] ->
      compare_files ~threshold_pct:!threshold ~quick:!quick old_path new_path
  | _ ->
      Format.eprintf
        "usage: bench/main.exe compare [--threshold P] [--quick] OLD.json NEW.json@.\n\
        \       bench/main.exe compare --self-test FILE@.";
      exit 2

(* -- driver ---------------------------------------------------------------------- *)

let all () =
  table1 ();
  table3 ();
  table4 ();
  figure1 ();
  figure2 ();
  figure3 ();
  figure4 ();
  ablations ();
  micro ()

let () =
  (* a process re-executed with a service marker in argv is a serve
     worker/supervisor/router child (bench serve spawns them), never a
     benchmark invocation *)
  Cheri_service.Service.child_dispatch ();
  Cheri_service.Router.child_dispatch ();
  (* split --jobs/-j N out of argv; what remains is JOB [FILE] *)
  let rec split_jobs = function
    | ("--jobs" | "-j") :: v :: rest -> (
        match int_of_string_opt v with
        | Some n when n >= 1 ->
            jobs := n;
            split_jobs rest
        | _ ->
            Format.eprintf "--jobs expects a positive integer, got %s@." v;
            exit 2)
    | [ "--jobs" ] | [ "-j" ] ->
        Format.eprintf "--jobs requires an argument@." ;
        exit 2
    | x :: rest -> x :: split_jobs rest
    | [] -> []
  in
  let positional = split_jobs (List.tl (Array.to_list Sys.argv)) in
  let job = match positional with j :: _ -> j | [] -> "all" in
  (try
     match job with
     | "all" -> all ()
     | "t1" -> table1 ()
     | "t3" -> table3 ()
     | "t4" -> table4 ()
     | "f1" -> figure1 ()
     | "f2" -> figure2 ()
     | "f3" -> figure3 ()
     | "f4" -> figure4 ()
     | "ablations" -> ablations ()
     | "micro" -> micro ()
     | "smoke" -> smoke ()
     | "compare" -> compare_cmd (List.tl positional)
     | "json" ->
         bench_json (match positional with _ :: f :: _ -> f | _ -> bench_output_file)
     | "perf" ->
         let rest = List.tl positional in
         let quick = List.mem "--quick" rest in
         let path =
           match List.filter (fun s -> s <> "--quick") rest with
           | f :: _ -> f
           | [] -> perf_output_file
         in
         bench_perf ~quick path
     | "inject" ->
         bench_inject (match positional with _ :: f :: _ -> f | _ -> inject_output_file)
     | "snap" ->
         let rest = List.tl positional in
         let quick = List.mem "--quick" rest in
         let path =
           match List.filter (fun s -> s <> "--quick") rest with
           | f :: _ -> f
           | [] -> snap_output_file
         in
         bench_snap ~quick path
     | "serve" ->
         let rest = List.tl positional in
         let quick = List.mem "--quick" rest in
         (* serve --shards [N]: the sharded-fleet variant (N defaults
            to 3 when omitted, e.g. `serve --shards --quick`) *)
         let rec split_shards = function
           | "--shards" :: v :: rest' when int_of_string_opt v <> None ->
               let _, rest'' = split_shards rest' in
               (Some (int_of_string v), rest'')
           | "--shards" :: rest' ->
               let sh, rest'' = split_shards rest' in
               (Some (Option.value ~default:3 sh), rest'')
           | x :: rest' ->
               let sh, rest'' = split_shards rest' in
               (sh, x :: rest'')
           | [] -> (None, [])
         in
         let shards, rest = split_shards rest in
         let path =
           match List.filter (fun s -> s <> "--quick") rest with
           | f :: _ -> f
           | [] -> ( match shards with Some _ -> serve_fleet_output_file | None -> serve_output_file)
         in
         (match shards with
         | Some n -> bench_serve_fleet ~quick ~shards:n path
         | None -> bench_serve ~quick path)
     | other ->
         Format.eprintf "unknown job %s@." other;
         exit 2
   with
  | W.Runner.Run_failed msg ->
      Format.eprintf "benchmark run failed: %s@." msg;
      exit 1
  | Exec.Pool.Worker_failed e ->
      Format.eprintf "benchmark worker failed: %a@." Exec.Pool.pp_error e;
      exit 1);
  Format.pp_print_flush ppf ()
