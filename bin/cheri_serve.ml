(* The multi-tenant simulation service driver:

     cheri-serve --dir DIR [--socket PATH] [--workers N] [--worker-jobs N]
                 [--capacity N] [--slice N] [--fuel N] [--heartbeat SECS]

   Runs the supervisor in the foreground: binds the Unix-domain
   socket, spawns N worker processes (re-executions of this binary),
   and serves length-prefixed JSON requests (submit / poll / stats /
   metrics / shutdown) until a shutdown request arrives. Tenants are
   admitted under --capacity, executed preemptively in fuel-bounded
   slices, checkpointed at every yield, and survive worker crashes
   with at most the in-flight slice lost.

     cheri-serve --chaos [--tenants N] [--kills N] [--seed N] [--jobs N]
                 [--slice N] [--keep] [--verbose]

   The self-test: a real server with --jobs workers is flooded past
   its admission cap while workers are SIGSTOPped/SIGKILLed and a
   checkpoint is corrupted on disk; every tenant must come out
   byte-identical to an undisturbed serial run. Exit 0 iff every
   assertion held. *)

module Service = Cheri_service.Service
module Chaos = Cheri_service.Chaos
module Cli = Cheri_util.Cli

let () =
  (* a process re-executed with a service marker in argv is a worker or
     supervisor child, never a CLI invocation *)
  Service.child_dispatch ();
  let chaos = ref false in
  let c = ref Chaos.default in
  let dir = ref None in
  let cfg_override = ref [] in
  let override f = cfg_override := f :: !cfg_override in
  Cli.parse ~prog:"cheri-serve"
    ~usage:"--dir DIR [OPTIONS] | --chaos [OPTIONS]"
    [
      Cli.string "--dir" ~metavar:"DIR" ~doc:"state directory (socket, status, checkpoints)"
        (fun d -> dir := Some d);
      Cli.string "--socket" ~metavar:"PATH" ~doc:"listen socket (default DIR/serve.sock)"
        (fun p -> override (fun cfg -> { cfg with Service.socket = p }));
      Cli.int ~min:1 "--workers" ~metavar:"N" ~doc:"worker processes (default 2)" (fun n ->
          override (fun cfg -> { cfg with Service.workers = n });
          c := { !c with Chaos.ch_workers = n });
      Cli.int ~min:1 "--worker-jobs" ~metavar:"N" ~doc:"pool domains per worker (default 1)"
        (fun n ->
          override (fun cfg -> { cfg with Service.worker_jobs = n });
          c := { !c with Chaos.ch_worker_jobs = n });
      Cli.int ~min:1 "--capacity" ~metavar:"N" ~doc:"admission cap on live tenants (default 64)"
        (fun n -> override (fun cfg -> { cfg with Service.capacity = n }));
      Cli.int ~min:1 "--slice" ~metavar:"N" ~doc:"per-slice fuel (default 100000)" (fun n ->
          override (fun cfg -> { cfg with Service.slice = n });
          c := { !c with Chaos.ch_slice = n });
      Cli.int ~min:1 "--fuel" ~metavar:"N" ~doc:"default per-tenant fuel budget" (fun n ->
          override (fun cfg -> { cfg with Service.fuel = n }));
      Cli.float ~strictly_positive:true "--heartbeat" ~metavar:"SECS"
        ~doc:"worker heartbeat interval (default 0.25)" (fun s ->
          override (fun cfg -> { cfg with Service.heartbeat_s = s }));
      Cli.unit "--chaos" ~doc:"run the kill-a-worker chaos self-test, then exit" (fun () ->
          chaos := true);
      Cli.int ~min:1 "--tenants" ~metavar:"N" ~doc:"chaos: tenant count (default 16)" (fun n ->
          c := { !c with Chaos.ch_tenants = n });
      Cli.int "--kills" ~metavar:"N" ~doc:"chaos: worker SIGKILLs (default 3)" (fun n ->
          c := { !c with Chaos.ch_kills = n });
      Cli.int "--seed" ~metavar:"N" ~doc:"chaos: workload seed (default 42)" (fun n ->
          c := { !c with Chaos.ch_seed = n });
      Cli.int ~min:1 "--jobs" ~metavar:"N" ~doc:"chaos: worker processes (alias of --workers)"
        (fun n -> c := { !c with Chaos.ch_workers = n });
      Cli.unit "--keep" ~doc:"chaos: keep the state directory for post-mortem" (fun () ->
          c := { !c with Chaos.ch_keep = true });
      Cli.unit "--verbose" ~doc:"chaos: narrate disruptions on stderr" (fun () ->
          c := { !c with Chaos.ch_verbose = true });
    ]
    (List.tl (Array.to_list Sys.argv));
  if !chaos then exit (Chaos.run !c)
  else
    match !dir with
    | None -> Cli.die "--dir is required (or use --chaos for the self-test)"
    | Some dir ->
        let cfg =
          List.fold_left (fun cfg f -> f cfg) (Service.default_config ~dir)
            (List.rev !cfg_override)
        in
        Printf.printf "cheri-serve: listening on %s (%d workers, capacity %d)\n%!"
          cfg.Service.socket cfg.Service.workers cfg.Service.capacity;
        Service.server_main cfg
