(* The multi-tenant simulation service driver:

     cheri-serve --dir DIR [--socket PATH] [--workers N] [--worker-jobs N]
                 [--capacity N] [--slice N] [--fuel N] [--heartbeat SECS]

   Runs the supervisor in the foreground: binds the Unix-domain
   socket, spawns N worker processes (re-executions of this binary),
   and serves length-prefixed JSON requests (submit / poll / stats /
   metrics / shutdown) until a shutdown request arrives. Tenants are
   admitted under --capacity, executed preemptively in fuel-bounded
   slices, checkpointed at every yield, and survive worker crashes
   with at most the in-flight slice lost.

     cheri-serve --dir DIR --shards N [OPTIONS]

   Runs a sharded fleet instead: a router on DIR/fleet.sock over N
   supervisor shards (each with its own worker pool under
   DIR/shard_<k>/), with rendezvous placement, live migration,
   graceful drain and automatic failover. SIGTERM drains every shard
   and exits 0.

     cheri-serve admin drain --shard K --socket PATH
     cheri-serve admin rebalance --socket PATH
     cheri-serve admin stats --socket PATH

   Admin verbs against a running fleet socket: park one shard's
   tenants on the survivors and hold the slot; revive held slots and
   re-spread tenants to their rendezvous owners; dump fleet status.

     cheri-serve --chaos [--tenants N] [--kills N] [--seed N] [--jobs N]
                 [--slice N] [--keep] [--verbose]
     cheri-serve --chaos-fleet [--tenants N] [--shards N] [--seed N]
                 [--slice N] [--keep] [--verbose]

   The self-tests: --chaos floods one supervisor past its admission
   cap while workers are SIGSTOPped/SIGKILLed and a checkpoint is
   corrupted on disk; --chaos-fleet drives a >=3-shard fleet through a
   whole-shard stall, SIGKILL, SIGTERM drain and admin
   drain+rebalance. Every tenant must come out byte-identical to an
   undisturbed serial run, with exact migration accounting. Exit 0 iff
   every assertion held. *)

module Service = Cheri_service.Service
module Router = Cheri_service.Router
module Protocol = Cheri_service.Protocol
module Chaos = Cheri_service.Chaos
module Json = Cheri_util.Json
module Cli = Cheri_util.Cli

let admin_request ~socket ~json =
  let fd =
    try
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX socket);
      fd
    with Unix.Unix_error (e, _, _) ->
      Cli.die "cannot connect to %s: %s" socket (Unix.error_message e)
  in
  let reply = Protocol.request fd (Protocol.Reader.create ()) json in
  (try Unix.close fd with Unix.Unix_error _ -> ());
  match reply with
  | Error e -> Cli.die "request failed: %s" e
  | Ok j ->
      print_endline (Json.encode j);
      exit (match Option.bind (Json.member "ok" j) Json.to_bool with Some true -> 0 | _ -> 1)

let () =
  (* a process re-executed with a service marker in argv is a worker,
     supervisor or router child, never a CLI invocation *)
  Service.child_dispatch ();
  Router.child_dispatch ();
  let chaos = ref false in
  let chaos_fleet = ref false in
  let c = ref Chaos.default in
  let fc = ref Chaos.fleet_default in
  let dir = ref None in
  let shards = ref 0 in
  let shard_arg = ref None in
  let socket = ref None in
  let positionals = ref [] in
  let cfg_override = ref [] in
  let rcfg_override = ref [] in
  let override f = cfg_override := f :: !cfg_override in
  let roverride f = rcfg_override := f :: !rcfg_override in
  Cli.parse ~prog:"cheri-serve"
    ~usage:
      "--dir DIR [--shards N] [OPTIONS] | admin VERB --socket PATH | --chaos | --chaos-fleet"
    ~positional:(fun w -> positionals := w :: !positionals)
    [
      Cli.string "--dir" ~metavar:"DIR" ~doc:"state directory (socket, status, checkpoints)"
        (fun d -> dir := Some d);
      Cli.string "--socket" ~metavar:"PATH"
        ~doc:"listen socket (default DIR/serve.sock, fleet DIR/fleet.sock); admin: target"
        (fun p ->
          socket := Some p;
          override (fun cfg -> { cfg with Service.socket = p });
          roverride (fun cfg -> { cfg with Router.r_socket = p }));
      Cli.int ~min:1 "--shards" ~metavar:"N"
        ~doc:"run a sharded fleet with N supervisor shards (default: single supervisor)"
        (fun n ->
          shards := n;
          fc := { !fc with Chaos.f_shards = n });
      Cli.int ~min:0 "--shard" ~metavar:"K" ~doc:"admin drain: the shard to drain" (fun k ->
          shard_arg := Some k);
      Cli.int ~min:1 "--workers" ~metavar:"N" ~doc:"worker processes (per shard; default 2)"
        (fun n ->
          override (fun cfg -> { cfg with Service.workers = n });
          roverride (fun cfg -> { cfg with Router.r_workers = n });
          c := { !c with Chaos.ch_workers = n };
          fc := { !fc with Chaos.f_workers = n });
      Cli.int ~min:1 "--worker-jobs" ~metavar:"N" ~doc:"pool domains per worker (default 1)"
        (fun n ->
          override (fun cfg -> { cfg with Service.worker_jobs = n });
          roverride (fun cfg -> { cfg with Router.r_worker_jobs = n });
          c := { !c with Chaos.ch_worker_jobs = n });
      Cli.int ~min:1 "--capacity" ~metavar:"N"
        ~doc:"admission cap on live tenants (fleet-wide; default 64)" (fun n ->
          override (fun cfg -> { cfg with Service.capacity = n });
          roverride (fun cfg -> { cfg with Router.r_capacity = n }));
      Cli.int ~min:1 "--slice" ~metavar:"N" ~doc:"per-slice fuel (default 100000)" (fun n ->
          override (fun cfg -> { cfg with Service.slice = n });
          roverride (fun cfg -> { cfg with Router.r_slice = n });
          c := { !c with Chaos.ch_slice = n };
          fc := { !fc with Chaos.f_slice = n });
      Cli.int ~min:1 "--fuel" ~metavar:"N" ~doc:"default per-tenant fuel budget" (fun n ->
          override (fun cfg -> { cfg with Service.fuel = n });
          roverride (fun cfg -> { cfg with Router.r_fuel = n }));
      Cli.float ~strictly_positive:true "--heartbeat" ~metavar:"SECS"
        ~doc:"worker heartbeat interval (default 0.25)" (fun s ->
          override (fun cfg -> { cfg with Service.heartbeat_s = s });
          roverride (fun cfg -> { cfg with Router.r_heartbeat_s = s }));
      Cli.unit "--chaos" ~doc:"run the kill-a-worker chaos self-test, then exit" (fun () ->
          chaos := true);
      Cli.unit "--chaos-fleet" ~doc:"run the shard-loss chaos self-test, then exit" (fun () ->
          chaos_fleet := true);
      Cli.int ~min:1 "--tenants" ~metavar:"N" ~doc:"chaos: tenant count" (fun n ->
          c := { !c with Chaos.ch_tenants = n };
          fc := { !fc with Chaos.f_tenants = n });
      Cli.int "--kills" ~metavar:"N" ~doc:"chaos: worker SIGKILLs (default 3)" (fun n ->
          c := { !c with Chaos.ch_kills = n });
      Cli.int "--seed" ~metavar:"N" ~doc:"chaos: workload seed" (fun n ->
          c := { !c with Chaos.ch_seed = n };
          fc := { !fc with Chaos.f_seed = n });
      Cli.int ~min:1 "--jobs" ~metavar:"N" ~doc:"chaos: worker processes (alias of --workers)"
        (fun n ->
          c := { !c with Chaos.ch_workers = n };
          fc := { !fc with Chaos.f_workers = n });
      Cli.unit "--keep" ~doc:"chaos: keep the state directory for post-mortem" (fun () ->
          c := { !c with Chaos.ch_keep = true };
          fc := { !fc with Chaos.f_keep = true });
      Cli.unit "--verbose" ~doc:"chaos: narrate disruptions on stderr" (fun () ->
          c := { !c with Chaos.ch_verbose = true };
          fc := { !fc with Chaos.f_verbose = true });
    ]
    (List.tl (Array.to_list Sys.argv));
  match List.rev !positionals with
  | [ "admin"; verb ] -> (
      let socket =
        match (!socket, !dir) with
        | Some s, _ -> s
        | None, Some d -> Filename.concat d "fleet.sock"
        | None, None -> Cli.die "admin %s: --socket (or --dir) is required" verb
      in
      let jint n = Json.Num (string_of_int n) in
      match verb with
      | "drain" -> (
          match !shard_arg with
          | None -> Cli.die "admin drain: --shard K is required"
          | Some k ->
              admin_request ~socket
                ~json:(Json.Obj [ ("op", Json.Str "drain"); ("shard", jint k) ]))
      | "rebalance" -> admin_request ~socket ~json:(Json.Obj [ ("op", Json.Str "rebalance") ])
      | "stats" -> admin_request ~socket ~json:(Json.Obj [ ("op", Json.Str "stats") ])
      | v -> Cli.die "unknown admin verb %S (expected drain, rebalance or stats)" v)
  | _ :: _ -> Cli.die "unexpected arguments (expected: admin drain|rebalance|stats)"
  | [] ->
      if !chaos_fleet then exit (Chaos.run_fleet !fc)
      else if !chaos then exit (Chaos.run !c)
      else (
        match !dir with
        | None -> Cli.die "--dir is required (or use --chaos / --chaos-fleet for the self-tests)"
        | Some dir ->
            if !shards > 0 then begin
              let rcfg =
                List.fold_left
                  (fun cfg f -> f cfg)
                  { (Router.default_rconfig ~dir) with Router.r_shards = !shards }
                  (List.rev !rcfg_override)
              in
              Printf.printf
                "cheri-serve: fleet on %s (%d shards x %d workers, capacity %d)\n%!"
                rcfg.Router.r_socket rcfg.Router.r_shards rcfg.Router.r_workers
                rcfg.Router.r_capacity;
              Router.router_main rcfg
            end
            else begin
              let cfg =
                List.fold_left (fun cfg f -> f cfg) (Service.default_config ~dir)
                  (List.rev !cfg_override)
              in
              Printf.printf "cheri-serve: listening on %s (%d workers, capacity %d)\n%!"
                cfg.Service.socket cfg.Service.workers cfg.Service.capacity;
              Service.server_main cfg
            end)
