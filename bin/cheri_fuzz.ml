(* Differential-fuzz campaign driver:

     cheri-fuzz [--seeds N] [--start N] [--jobs N] [--shrink] [--json FILE]
                [--checkpoint FILE] [--resume FILE]

   Runs N seeds across the domain pool, each seed executing one
   generated program under all ten implementations of the C abstract
   machine (seven interpreter pointer models + three compiled ABIs).
   Exit status 0 iff every implementation agreed on every seed.

     cheri-fuzz --self-test [--seeds N] [--jobs N]

   The deterministic CI smoke: runs a clean campaign (expects zero
   divergences), then injects an intentionally-broken implementation
   and checks that the campaign flags every seed and that the shrinker
   produces a reproducer strictly smaller than the originating
   program. *)

module Campaign = Cheri_fuzz.Campaign
module Gen = Cheri_fuzz.Gen

let usage () =
  prerr_endline
    "usage: cheri-fuzz [--seeds N] [--start N] [--jobs N] [--shrink] [--json FILE]\n\
    \                  [--checkpoint FILE] [--resume FILE] [--self-test]";
  exit 2

let ppf = Format.std_formatter

(* A deliberately wrong implementation: behaves like the PDP-11
   interpreter but flips the low bit of the exit code. Used by
   --self-test to prove the campaign detects and shrinks divergences. *)
let broken_impl () : Campaign.impl =
  let base = Campaign.interp_impl (List.hd Cheri_models.Registry.entries) in
  {
    Campaign.impl_name = "interp/broken";
    exec =
      (fun src ->
        let o = base.Campaign.exec src in
        {
          o with
          Campaign.impl = "interp/broken";
          status =
            (match o.Campaign.status with
            | Campaign.Exited c -> Campaign.Exited (Int64.logxor c 1L)
            | s -> s);
        });
  }

let self_test ~seeds ~jobs =
  (* 1. clean campaign: ten real implementations must agree on every seed *)
  let clean = Campaign.run ~shrink:true ~jobs ~seeds () in
  Campaign.pp_report ppf clean;
  if clean.Campaign.divergences <> [] || clean.Campaign.errors <> [] then begin
    Format.eprintf "self-test FAILED: clean campaign found divergences or errors@.";
    exit 1
  end;
  (* 2. injected divergence: every seed must be flagged and every
     reproducer must shrink to something strictly smaller *)
  let impls = Campaign.default_impls () @ [ broken_impl () ] in
  let broken_seeds = min seeds 3 in
  let broken = Campaign.run ~impls ~shrink:true ~jobs ~seeds:broken_seeds () in
  if List.length broken.Campaign.divergences <> broken_seeds then begin
    Format.eprintf "self-test FAILED: broken implementation not flagged on every seed@.";
    exit 1
  end;
  List.iter
    (fun (d : Campaign.divergence) ->
      match d.Campaign.minimized with
      | None ->
          Format.eprintf "self-test FAILED: seed %d did not shrink@." d.Campaign.seed;
          exit 1
      | Some m ->
          if String.length m >= String.length d.Campaign.source then begin
            Format.eprintf "self-test FAILED: seed %d reproducer did not get smaller@."
              d.Campaign.seed;
            exit 1
          end;
          if not (Campaign.divergent (Campaign.run_impls impls m)) then begin
            Format.eprintf "self-test FAILED: seed %d minimized program no longer diverges@."
              d.Campaign.seed;
            exit 1
          end)
    broken.Campaign.divergences;
  Format.fprintf ppf
    "self-test ok: %d clean seeds agreed; injected divergence flagged and shrunk on %d seeds@."
    seeds broken_seeds

let () =
  let seeds = ref 100 in
  let start = ref 0 in
  let jobs = ref (Cheri_exec.Exec.Pool.default_jobs ()) in
  let shrink = ref false in
  let json = ref None in
  let checkpoint = ref None in
  let resume = ref None in
  let selftest = ref false in
  let int_arg name v rest k =
    match int_of_string_opt v with
    | Some n when n >= 0 -> k n rest
    | _ ->
        Format.eprintf "%s expects a non-negative integer, got %s@." name v;
        exit 2
  in
  let rec parse = function
    | [] -> ()
    | "--seeds" :: v :: rest -> int_arg "--seeds" v rest (fun n r -> seeds := n; parse r)
    | "--start" :: v :: rest -> int_arg "--start" v rest (fun n r -> start := n; parse r)
    | "--jobs" :: v :: rest -> int_arg "--jobs" v rest (fun n r -> jobs := max 1 n; parse r)
    | "--shrink" :: rest ->
        shrink := true;
        parse rest
    | "--json" :: f :: rest ->
        json := Some f;
        parse rest
    | "--checkpoint" :: f :: rest ->
        checkpoint := Some f;
        parse rest
    | "--resume" :: f :: rest ->
        resume := Some f;
        parse rest
    | "--self-test" :: rest ->
        selftest := true;
        parse rest
    | [ ("--seeds" | "--start" | "--jobs" | "--json" | "--checkpoint" | "--resume") as f ] ->
        Format.eprintf "%s requires an argument@." f;
        exit 2
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !selftest then self_test ~seeds:!seeds ~jobs:!jobs
  else begin
    let report =
      match
        Campaign.run ~shrink:!shrink ~jobs:!jobs ~first_seed:!start
          ?checkpoint:!checkpoint ?resume:!resume ~seeds:!seeds ()
      with
      | r -> r
      | exception Campaign.Resume_mismatch msg ->
          Format.eprintf "--resume: %s@." msg;
          exit 2
    in
    Campaign.pp_report ppf report;
    Option.iter
      (fun path ->
        let oc = open_out path in
        output_string oc (Campaign.report_json report);
        close_out oc;
        Format.fprintf ppf "wrote %s@." path)
      !json;
    Format.pp_print_flush ppf ();
    if report.Campaign.divergences <> [] || report.Campaign.errors <> [] then exit 1
  end
