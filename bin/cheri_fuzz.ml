(* Differential-fuzz campaign driver:

     cheri-fuzz [--seeds N] [--start N] [--jobs N] [--shrink] [--json FILE]
                [--checkpoint FILE] [--resume FILE]

   Runs N seeds across the domain pool, each seed executing one
   generated program under all ten implementations of the C abstract
   machine (seven interpreter pointer models + three compiled ABIs).
   Exit status 0 iff every implementation agreed on every seed.

     cheri-fuzz --self-test [--seeds N] [--jobs N]

   The deterministic CI smoke: runs a clean campaign (expects zero
   divergences), then injects an intentionally-broken implementation
   and checks that the campaign flags every seed and that the shrinker
   produces a reproducer strictly smaller than the originating
   program. *)

module Campaign = Cheri_fuzz.Campaign
module Gen = Cheri_fuzz.Gen
module Obs = Cheri_obs.Obs
module Json = Cheri_util.Json
module Cli = Cheri_util.Cli

let ppf = Format.std_formatter

(* A deliberately wrong implementation: behaves like the PDP-11
   interpreter but flips the low bit of the exit code. Used by
   --self-test to prove the campaign detects and shrinks divergences. *)
let broken_impl () : Campaign.impl =
  let base = Campaign.interp_impl (List.hd Cheri_models.Registry.entries) in
  {
    Campaign.impl_name = "interp/broken";
    exec =
      (fun src ->
        let o = base.Campaign.exec src in
        {
          o with
          Campaign.impl = "interp/broken";
          status =
            (match o.Campaign.status with
            | Campaign.Exited c -> Campaign.Exited (Int64.logxor c 1L)
            | s -> s);
        });
  }

let self_test ~seeds ~jobs =
  (* 1. clean campaign: ten real implementations must agree on every seed *)
  let clean = Campaign.run ~shrink:true ~jobs ~seeds () in
  Campaign.pp_report ppf clean;
  if clean.Campaign.divergences <> [] || clean.Campaign.errors <> [] then begin
    Format.eprintf "self-test FAILED: clean campaign found divergences or errors@.";
    exit 1
  end;
  (* 2. injected divergence: every seed must be flagged and every
     reproducer must shrink to something strictly smaller *)
  let impls = Campaign.default_impls () @ [ broken_impl () ] in
  let broken_seeds = min seeds 3 in
  let broken = Campaign.run ~impls ~shrink:true ~jobs ~seeds:broken_seeds () in
  if List.length broken.Campaign.divergences <> broken_seeds then begin
    Format.eprintf "self-test FAILED: broken implementation not flagged on every seed@.";
    exit 1
  end;
  List.iter
    (fun (d : Campaign.divergence) ->
      match d.Campaign.minimized with
      | None ->
          Format.eprintf "self-test FAILED: seed %d did not shrink@." d.Campaign.seed;
          exit 1
      | Some m ->
          if String.length m >= String.length d.Campaign.source then begin
            Format.eprintf "self-test FAILED: seed %d reproducer did not get smaller@."
              d.Campaign.seed;
            exit 1
          end;
          if not (Campaign.divergent (Campaign.run_impls impls m)) then begin
            Format.eprintf "self-test FAILED: seed %d minimized program no longer diverges@."
              d.Campaign.seed;
            exit 1
          end)
    broken.Campaign.divergences;
  (* 3. observability: per-seed counters must not depend on the job
     count, and the heartbeat status file must be valid JSON *)
  let counters_at jobs =
    let obs = Obs.create () in
    ignore (Campaign.run ~jobs ~seeds:(min seeds 4) ~obs ());
    Obs.to_prometheus ~timing:false obs
  in
  let m1 = counters_at 1 in
  let m2 = counters_at (max 1 (min 2 (Domain.recommended_domain_count ()))) in
  if m1 = "" then begin
    Format.eprintf "self-test FAILED: metrics dump is empty@.";
    exit 1
  end;
  if m1 <> m2 then begin
    Format.eprintf "self-test FAILED: counters differ between --jobs 1 and --jobs 2@.";
    exit 1
  end;
  let hb_path = Filename.temp_file "cheri_fuzz_selftest" ".status.json" in
  let hb = Obs.Heartbeat.create ~interval_s:0.0 ~path:hb_path () in
  let hb_report =
    Campaign.run ~jobs ~seeds:(min seeds 4) ~obs:(Obs.create ()) ~heartbeat:hb ()
  in
  let status =
    let ic = open_in_bin hb_path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  (match Json.parse status with
  | Error e ->
      Format.eprintf "self-test FAILED: heartbeat status is not valid JSON (%s): %s@." e
        status;
      exit 1
  | Ok j -> (
      match Option.bind (Json.member "tasks_done" j) Json.to_int with
      | Some n when n = hb_report.Campaign.seeds -> ()
      | _ ->
          Format.eprintf "self-test FAILED: heartbeat tasks_done disagrees: %s@." status;
          exit 1));
  Sys.remove hb_path;
  (match Json.parse (Campaign.report_json ~timing:true hb_report) with
  | Ok j when Option.bind (Json.member "timing" j) (Json.member "task_wall_p99_s") <> None
    -> ()
  | Ok _ ->
      Format.eprintf "self-test FAILED: timed report lacks timing.task_wall_p99_s@.";
      exit 1
  | Error e ->
      Format.eprintf "self-test FAILED: timed report is not valid JSON: %s@." e;
      exit 1);
  Format.fprintf ppf
    "metrics ok: counters jobs-independent, heartbeat valid JSON, timing key parses@.";
  Format.fprintf ppf
    "self-test ok: %d clean seeds agreed; injected divergence flagged and shrunk on %d seeds@."
    seeds broken_seeds

let () =
  let seeds = ref 100 in
  let start = ref 0 in
  let jobs = ref (Cheri_exec.Exec.Pool.default_jobs ()) in
  let shrink = ref false in
  let json = ref None in
  let checkpoint = ref None in
  let resume = ref None in
  let metrics = ref None in
  (* [Some None] = dump to stdout, [Some (Some f)] = write to [f] *)
  let heartbeat_s = ref None in
  let status_path = ref "status.json" in
  let selftest = ref false in
  Cli.parse ~prog:"cheri-fuzz" ~usage:"[OPTIONS]"
    [
      Cli.int "--seeds" ~metavar:"N" ~doc:"number of seeds to run (default 100)"
        (fun n -> seeds := n);
      Cli.int "--start" ~metavar:"N" ~doc:"first seed (default 0)" (fun n -> start := n);
      Cli.int "--jobs" ~metavar:"N" ~doc:"worker domains (default: host parallelism)"
        (fun n -> jobs := max 1 n);
      Cli.unit "--shrink" ~doc:"minimize each divergent program" (fun () -> shrink := true);
      Cli.string "--json" ~metavar:"FILE" ~doc:"write the campaign report as JSON"
        (fun f -> json := Some f);
      Cli.string "--checkpoint" ~metavar:"FILE" ~doc:"append one JSONL record per finished seed"
        (fun f -> checkpoint := Some f);
      Cli.string "--resume" ~metavar:"FILE" ~doc:"restart from a checkpoint file"
        (fun f -> resume := Some f);
      Cli.opt_string "--metrics" ~metavar:"FILE" ~doc:"dump the metrics registry to stdout or FILE"
        (fun v -> metrics := Some v);
      Cli.float "--heartbeat" ~metavar:"SECS" ~doc:"status-file cadence"
        (fun x -> heartbeat_s := Some x);
      Cli.string "--status" ~metavar:"FILE" ~doc:"heartbeat target (default status.json)"
        (fun f -> status_path := f);
      Cli.unit "--self-test" ~doc:"deterministic CI smoke, then exit" (fun () -> selftest := true);
    ]
    (List.tl (Array.to_list Sys.argv));
  if !selftest then self_test ~seeds:!seeds ~jobs:!jobs
  else begin
    let heartbeat =
      Option.map
        (fun s -> Obs.Heartbeat.create ~interval_s:s ~path:!status_path ())
        !heartbeat_s
    in
    let report =
      match
        Campaign.run ~shrink:!shrink ~jobs:!jobs ~first_seed:!start
          ?checkpoint:!checkpoint ?resume:!resume ?heartbeat ~seeds:!seeds ()
      with
      | r -> r
      | exception Campaign.Resume_mismatch msg ->
          Format.eprintf "--resume: %s@." msg;
          exit 2
    in
    Campaign.pp_report ppf report;
    Option.iter
      (fun path ->
        let oc = open_out path in
        output_string oc (Campaign.report_json report);
        close_out oc;
        Format.fprintf ppf "wrote %s@." path)
      !json;
    (* final metrics dump: JSONL when the target looks like JSON,
       Prometheus text otherwise (and on stdout) *)
    Option.iter
      (fun dest ->
        match dest with
        | None -> print_string (Obs.to_prometheus Obs.default)
        | Some path ->
            let data =
              if Filename.check_suffix path ".json" || Filename.check_suffix path ".jsonl"
              then Obs.to_jsonl Obs.default
              else Obs.to_prometheus Obs.default
            in
            let oc = open_out_bin path in
            output_string oc data;
            close_out oc;
            Format.fprintf ppf "wrote %s@." path)
      !metrics;
    Format.pp_print_flush ppf ();
    if report.Campaign.divergences <> [] || report.Campaign.errors <> [] then exit 1
  end
