(* Snapshot inspection tool and the snapshot/resume CI smoke:

     cheri-snap info FILE        # describe a snapshot without running it
     cheri-snap --self-test      # the deterministic resumability check

   The self-test is the executable form of the snapshot guarantee: for
   every ABI, a run that is preempted, serialized to disk, restored
   into a *fresh process* and finished must be byte-identical — same
   output, same cycles, same instret — to a run that was never
   interrupted. Plus the negative paths: truncated, corrupt,
   wrong-format and wrong-ABI images are refused with a structured
   error and exit code 2, never an exception.

   (An undocumented [resume-child] subcommand is the fresh process the
   self-test forks into; it loads a snapshot, finishes the run, and
   reports its observables through a file.) *)

module Machine = Cheri_isa.Machine
module Abi = Cheri_compiler.Abi
module Codegen = Cheri_compiler.Codegen
module Snapshot = Cheri_snapshot.Snapshot
module D = Cheri_workloads.Dhrystone

let usage () =
  prerr_endline "usage: cheri-snap info FILE\n       cheri-snap --self-test";
  exit 2

let fail fmt = Format.kasprintf (fun s -> prerr_endline ("cheri-snap: " ^ s); exit 1) fmt

let snap_fail e =
  Format.eprintf "cheri-snap: %a@." Snapshot.pp_error e;
  exit 2

let abi_key = function
  | Abi.Mips -> "mips"
  | Abi.Cheri Cheri_core.Cap_ops.V2 -> "v2"
  | Abi.Cheri Cheri_core.Cap_ops.V3 -> "v3"

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

(* small enough to replay in milliseconds, long enough that a midpoint
   snapshot has live heap, cache and output state behind it *)
let test_source = D.source { D.iterations = 30 }
let test_fuel = 50_000_000

type observed = { o_outcome : string; o_cycles : int; o_instret : int; o_output : string }

let observe m outcome =
  {
    o_outcome = Format.asprintf "%a" Machine.pp_outcome outcome;
    o_cycles = Machine.cycles m;
    o_instret = Machine.instret m;
    o_output = Machine.output m;
  }

let observed_to_string o =
  Printf.sprintf "%s\n%d\n%d\n%s" o.o_outcome o.o_cycles o.o_instret o.o_output

let fresh_machine abi = Codegen.machine_for abi (Codegen.compile_source abi test_source)

let run_uninterrupted abi =
  let m = fresh_machine abi in
  observe m (Machine.run ~fuel:test_fuel m)

(* run in [slice]-instruction pieces until the program finishes *)
let run_out ~slice m =
  let rec go () =
    match Machine.run ~fuel:slice ~yield:true m with
    | Machine.Yielded -> go ()
    | finished -> finished
  in
  go ()

(* -- resume-child: the fresh process of the kill/resume test --------------- *)

let resume_child snap_path abi_arg out_path =
  let abi =
    match Abi.of_key abi_arg with
    | Some abi -> abi
    | None -> fail "resume-child: unknown ABI %s" abi_arg
  in
  let m = fresh_machine abi in
  (match Snapshot.load snap_path with
  | Error e -> snap_fail e
  | Ok img -> (
      match Snapshot.restore m ~abi:(Abi.name abi) img with
      | Error e -> snap_fail e
      | Ok () -> ()));
  let o = observe m (Machine.run ~fuel:test_fuel m) in
  write_file out_path (observed_to_string o)

(* -- self-test -------------------------------------------------------------- *)

let temp suffix = Filename.temp_file "cheri-snap-test" suffix

let rm path = if Sys.file_exists path then Sys.remove path

(* preempt a fresh machine mid-run and persist it; [at] is a fuel
   budget that must land strictly inside the program *)
let snapshot_midrun abi ~at path =
  let m = fresh_machine abi in
  (match Machine.run ~fuel:at ~yield:true m with
  | Machine.Yielded -> ()
  | o -> fail "%s: program finished (%a) before the midpoint snapshot" (Abi.name abi)
           Machine.pp_outcome o);
  (match Snapshot.save ~abi:(Abi.name abi) ~path m with
  | Ok _ -> ()
  | Error e -> fail "%s: midpoint save failed: %s" (Abi.name abi) (Snapshot.error_to_string e));
  m

let expect_error what result check =
  match result with
  | Ok _ -> fail "%s: expected a structured error, got success" what
  | Error e ->
      if not (check e) then
        fail "%s: wrong error class: %s" what (Snapshot.error_to_string e)

let in_process_tests () =
  List.iter
    (fun abi ->
      let name = Abi.name abi in
      let reference = run_uninterrupted abi in
      (* 1. preemptive slicing alone must not change any observable;
         the odd slice size lands yields at unaligned boundaries *)
      let m = fresh_machine abi in
      let sliced = observe m (run_out ~slice:7_123 m) in
      if sliced <> reference then fail "%s: sliced run diverged from uninterrupted run" name;
      (* 2. save at a midpoint, restore into a fresh machine, finish
         both — the original and the restored copy must agree with the
         reference on every observable *)
      let snap = temp ".snap" in
      let at = reference.o_instret / 2 in
      let m1 = snapshot_midrun abi ~at snap in
      let cont1 = observe m1 (run_out ~slice:9_001 m1) in
      if cont1 <> reference then fail "%s: continued-after-save run diverged" name;
      let m2 = fresh_machine abi in
      (match Snapshot.load snap with
      | Error e -> fail "%s: load failed: %s" name (Snapshot.error_to_string e)
      | Ok img -> (
          if Snapshot.image_abi img <> name then fail "%s: image records wrong ABI" name;
          if Snapshot.image_instret img <> at then
            fail "%s: image instret %d, expected %d" name (Snapshot.image_instret img) at;
          match Snapshot.restore m2 ~abi:name img with
          | Error e -> fail "%s: restore failed: %s" name (Snapshot.error_to_string e)
          | Ok () -> ()));
      let cont2 = observe m2 (Machine.run ~fuel:test_fuel m2) in
      if cont2 <> reference then fail "%s: restored run diverged from uninterrupted run" name;
      rm snap)
    Abi.all

let negative_tests () =
  let abi = Abi.(Cheri Cheri_core.Cap_ops.V3) in
  let name = Abi.name abi in
  let snap = temp ".snap" in
  ignore (snapshot_midrun abi ~at:20_000 snap);
  let good = read_file snap in
  let variant suffix contents =
    let path = temp suffix in
    write_file path contents;
    path
  in
  (* truncation: cut inside the body *)
  let truncated = variant ".trunc" (String.sub good 0 (String.length good - 257)) in
  expect_error "truncated image" (Snapshot.load truncated) (function
    | Snapshot.Truncated _ -> true
    | _ -> false);
  rm truncated;
  (* corruption: same length, one flipped body byte *)
  let corrupt =
    let b = Bytes.of_string good in
    let pos = Bytes.length b - 64 in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
    variant ".corrupt" (Bytes.to_string b)
  in
  expect_error "corrupt image" (Snapshot.load corrupt) (function
    | Snapshot.Crc_mismatch _ -> true
    | _ -> false);
  rm corrupt;
  (* wrong format: the magic is not ours *)
  let alien = variant ".alien" ("not a snapshot at all\n" ^ String.make 64 'x') in
  expect_error "foreign file" (Snapshot.load alien) (function
    | Snapshot.Version_mismatch _ -> true
    | _ -> false);
  rm alien;
  (* wrong machine: a CHERIv3 image refuses a MIPS machine *)
  (match Snapshot.load snap with
  | Error e -> fail "negative tests: reload failed: %s" (Snapshot.error_to_string e)
  | Ok img ->
      let mips = fresh_machine Abi.Mips in
      expect_error "cross-ABI restore"
        (Snapshot.restore mips ~abi:(Abi.name Abi.Mips) img)
        (function Snapshot.Machine_mismatch _ -> true | _ -> false);
      (* wrong program: same ABI, different code *)
      let other =
        Codegen.machine_for abi
          (Codegen.compile_source abi (D.source { D.iterations = 31 }))
      in
      expect_error "cross-program restore"
        (Snapshot.restore other ~abi:name img)
        (function Snapshot.Machine_mismatch _ -> true | _ -> false);
      if not (String.length (Snapshot.describe img) > 0) then fail "describe is empty");
  (* missing file is an Io error, not an exception *)
  expect_error "missing file"
    (Snapshot.load (snap ^ ".does-not-exist"))
    (function Snapshot.Io _ -> true | _ -> false);
  rm snap

(* fork the real binary: restore must work in a process with no shared
   state, and a bad image must exit 2 with a message, not a backtrace *)
let fresh_process_tests () =
  let spawn args =
    let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
    let pid =
      Unix.create_process Sys.executable_name
        (Array.append [| Sys.executable_name |] args)
        Unix.stdin devnull devnull
    in
    Unix.close devnull;
    match Unix.waitpid [] pid with
    | _, Unix.WEXITED code -> code
    | _, (Unix.WSIGNALED _ | Unix.WSTOPPED _) -> -1
  in
  List.iter
    (fun abi ->
      let name = Abi.name abi in
      let reference = run_uninterrupted abi in
      let snap = temp ".snap" in
      let out = temp ".out" in
      ignore (snapshot_midrun abi ~at:(reference.o_instret / 2) snap);
      let code = spawn [| "resume-child"; snap; abi_key abi; out |] in
      if code <> 0 then fail "%s: resume-child exited %d" name code;
      let got = read_file out in
      if got <> observed_to_string reference then
        fail "%s: fresh-process resume diverged from uninterrupted run" name;
      rm snap;
      rm out)
    Abi.all;
  (* the child must refuse garbage with exit 2 *)
  let bad = temp ".bad" in
  write_file bad "cheri_c.snap/v1\ngarbage";
  let out = temp ".out" in
  let code = spawn [| "resume-child"; bad; "v3"; out |] in
  if code <> 2 then fail "resume-child accepted a corrupt image (exit %d, expected 2)" code;
  rm bad;
  rm out

let self_test () =
  in_process_tests ();
  negative_tests ();
  fresh_process_tests ();
  print_endline "cheri-snap self-test: all checks passed"

let () =
  match Array.to_list Sys.argv with
  | _ :: [ "--self-test" ] -> self_test ()
  | _ :: [ "info"; file ] -> (
      match Snapshot.load file with
      | Error e -> snap_fail e
      | Ok img -> print_endline (Snapshot.describe img))
  | _ :: [ "resume-child"; snap; abi; out ] -> resume_child snap abi out
  | _ -> usage ()
