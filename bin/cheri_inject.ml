(* Fault-injection campaign driver:

     cheri-inject [--seeds N] [--start N] [--kinds K1,K2] [--workloads W1,W2]
                  [--jobs N] [--fuel N] [--deadline S] [--json FILE]
                  [--checkpoint FILE] [--resume FILE] [--limit N] [--list]

   Runs the (workload x ABI x kind x seed) cross product over the
   domain pool, prints the per-ABI detection matrix, and exits 0 iff
   no task errored AND the CHERI ABIs showed zero silent corruptions
   for the pointer-protecting fault kinds — the paper's §4.2 claim as
   an executable check.

   --checkpoint FILE appends one JSONL record per finished task;
   --resume FILE restarts from such a file, skipping completed tasks,
   and (because reports are timing-free and fault parameters derive
   only from the task key) reproduces the uninterrupted run's --json
   output byte for byte.

     cheri-inject --self-test [--seeds N] [--jobs N]

   The deterministic CI smoke: a trimmed campaign asserting the CHERI
   detection guarantee, the MIPS silent-corruption contrast, watchdog
   reaping of a runaway workload, and kill+resume byte-identity. *)

module Inject = Cheri_inject.Inject
module Abi = Cheri_compiler.Abi
module Obs = Cheri_obs.Obs
module Json = Cheri_util.Json
module Cli = Cheri_util.Cli

let ppf = Format.std_formatter

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let cheri_abis = [ "CHERIv2"; "CHERIv3" ]
let pointer_kinds = List.filter Inject.pointer_protecting Inject.all_kinds

(* exit status: the §4.2 claim must hold on the CHERI ABIs *)
let guarantee_holds report =
  List.for_all
    (fun abi -> Inject.silent_count report ~abi pointer_kinds = 0)
    cheri_abis

(* -- self-test --------------------------------------------------------------- *)

let spin_workload =
  {
    Inject.w_name = "spin";
    w_source =
      (fun _ -> "int main(void) { long i = 0; while (1) { i = i + 1; } return 0; }");
  }

let fail fmt =
  Format.kasprintf
    (fun msg ->
      Format.eprintf "self-test FAILED: %s@." msg;
      exit 1)
    fmt

(* the small deterministic campaign of the kill/resume checks; also run
   by the hidden [selftest-kill-child] subcommand, so parent and child
   must agree on these parameters *)
let small_campaign () =
  let small_workloads =
    List.filter (fun (w : Inject.workload) -> w.Inject.w_name = "zlib") Inject.builtin_workloads
  in
  Inject.default_campaign ~workloads:small_workloads
    ~kinds:[ Inject.Tag_clear; Inject.Alloc_fail ] ~seeds:2 ()

let selftest_slice = 20_000

let self_test ~seeds ~jobs =
  (* domains beyond the physical core count only stall the OCaml
     stop-the-world collector; the self-test clamps rather than pay
     2-3x wall on single-core CI runners *)
  let jobs = max 1 (min jobs (Domain.recommended_domain_count ())) in
  (* 1. detection matrix on a trimmed campaign: the CHERI ABIs must
     show zero silent corruptions for the pointer-protecting kinds,
     and the PDP-11 baseline must show some for the stray-store kind *)
  let workloads =
    List.filter
      (fun (w : Inject.workload) -> List.mem w.Inject.w_name [ "olden.treeadd"; "zlib" ])
      Inject.builtin_workloads
  in
  let c = Inject.default_campaign ~workloads ~seeds () in
  let report = Inject.run ~jobs c in
  Inject.pp_report ppf report;
  if report.Inject.r_errors <> [] then fail "campaign reported task errors";
  if List.length report.Inject.r_records <> 2 * 3 * 5 * seeds then
    fail "expected %d records, got %d" (2 * 3 * 5 * seeds)
      (List.length report.Inject.r_records);
  List.iter
    (fun abi ->
      let n = Inject.silent_count report ~abi pointer_kinds in
      if n <> 0 then
        fail "%s shows %d silent corruptions for pointer-protecting kinds" abi n)
    cheri_abis;
  if Inject.silent_count report ~abi:"MIPS" [ Inject.Tag_clear ] = 0 then
    fail "PDP-11 baseline shows no silent corruption under stray pointer stores";
  Format.fprintf ppf "matrix ok: CHERI 0 silent on tag/bounds kinds, PDP-11 nonzero@.";
  (* 2. watchdog: a runaway workload in the campaign is reaped as Hung
     on every task, and the rest of the campaign still completes *)
  let hang_c =
    Inject.default_campaign
      ~workloads:(spin_workload :: workloads)
      ~kinds:[ Inject.Bitflip ] ~seeds:2 ~fuel:300_000 ()
  in
  let hang_report = Inject.run ~jobs hang_c in
  if hang_report.Inject.r_errors <> [] then fail "hang campaign reported task errors";
  let spin_records =
    List.filter (fun r -> r.Inject.workload = "spin") hang_report.Inject.r_records
  in
  if spin_records = [] then fail "no records for the runaway workload";
  List.iter
    (fun r ->
      if r.Inject.verdict <> Inject.Hung then
        fail "runaway task classified %s, not hang" (Inject.verdict_key r.Inject.verdict))
    spin_records;
  let healthy =
    List.filter (fun r -> r.Inject.workload <> "spin") hang_report.Inject.r_records
  in
  if List.length healthy <> 2 * 3 * 2 then
    fail "healthy workloads did not complete alongside the runaway";
  Format.fprintf ppf "watchdog ok: runaway reaped as hang, campaign completed@.";
  (* 3. kill + resume: a partial checkpoint (as a kill leaves behind)
     resumed to completion must reproduce the uninterrupted report
     byte for byte — even with a torn final line *)
  let small = small_campaign () in
  let tmp suffix = Filename.temp_file "cheri_inject_selftest" suffix in
  let ck_full = tmp ".full.jsonl" and ck_part = tmp ".part.jsonl" in
  let full = Inject.run ~jobs ~checkpoint:ck_full small in
  (* byte-identity checks compare the timing-free report: resumed and
     sliced runs re-time different subsets of the tasks by design *)
  let full_json = Inject.report_json ~timing:false full in
  let partial = Inject.run ~jobs ~checkpoint:ck_part ~limit:5 small in
  if List.length partial.Inject.r_records <> 5 then
    fail "limited run completed %d tasks, expected 5" (List.length partial.Inject.r_records);
  (* simulate the kill tearing the final line mid-write *)
  write_file ck_part
    (let s = read_file ck_part in
     String.sub s 0 (String.length s - 7) ^ "\n{\"workload\":\"zl");
  let resumed = Inject.run ~jobs ~checkpoint:ck_part ~resume:ck_part small in
  if resumed.Inject.r_resumed = 0 then fail "resume restored no records";
  let resumed_json = Inject.report_json ~timing:false resumed in
  if resumed_json <> full_json then
    fail "resumed report differs from the uninterrupted run's";
  (* a mismatched campaign must be refused, not silently mixed in *)
  (match
     Inject.run ~jobs ~resume:ck_full
       { small with Inject.c_seeds = small.Inject.c_seeds + 1 }
   with
  | exception Inject.Resume_mismatch _ -> ()
  | _ -> fail "resume accepted a checkpoint from a different campaign");
  Sys.remove ck_full;
  Format.fprintf ppf
    "resume ok: killed+resumed campaign reproduced the full report (%d bytes)@."
    (String.length full_json);
  (* 4. preemptive slicing: the sliced engine must reproduce the
     unsliced report byte for byte, for more than one granularity *)
  List.iter
    (fun slice ->
      let sliced = Inject.run ~jobs ~slice small in
      if Inject.report_json ~timing:false sliced <> full_json then
        fail "sliced campaign (slice %d) diverged from the unsliced report" slice)
    [ selftest_slice; 7_777 ];
  (* corrupt or stale in-flight sidecars must degrade to a task restart,
     never to a wrong or missing record: plant garbage sidecars for
     every task of the campaign, then resume the torn checkpoint *)
  List.iter
    (fun abi ->
      List.iter
        (fun kind ->
          List.iter
            (fun seed ->
              let key =
                Printf.sprintf "zlib-%s-%s-%d" (Abi.name abi) (Inject.kind_key kind) seed
              in
              write_file (ck_part ^ ".inflight." ^ key ^ ".snap") "not a snapshot")
            [ 0; 1 ])
        [ Inject.Tag_clear; Inject.Alloc_fail ])
    Abi.all;
  let resumed_sliced =
    Inject.run ~jobs ~checkpoint:ck_part ~resume:ck_part ~slice:selftest_slice small
  in
  if Inject.report_json ~timing:false resumed_sliced <> full_json then
    fail "sliced resume over corrupt sidecars diverged from the full report";
  Sys.remove ck_part;
  Format.fprintf ppf "sliced ok: preemptive engine bit-identical, bad sidecars ignored@.";
  (* 5. a real kill: fork a sliced campaign into a child process,
     SIGKILL it as soon as an in-flight sidecar shows up on disk (so at
     least one task is provably mid-run), and resume from the wreckage;
     the final report must still be byte-identical *)
  let ck_kill = tmp ".kill.jsonl" in
  Sys.remove ck_kill;
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process Sys.executable_name
      [| Sys.executable_name; "selftest-kill-child"; ck_kill |]
      Unix.stdin devnull devnull
  in
  Unix.close devnull;
  let dir = Filename.dirname ck_kill in
  let prefix = Filename.basename ck_kill ^ ".inflight." in
  let has_prefix s = String.length s >= String.length prefix
                     && String.sub s 0 (String.length prefix) = prefix in
  let deadline = Unix.gettimeofday () +. 60. in
  let rec wait_for_sidecar () =
    if Unix.gettimeofday () > deadline then begin
      Unix.kill pid Sys.sigkill;
      ignore (Unix.waitpid [] pid);
      fail "no in-flight sidecar appeared within 60s"
    end
    else if Array.exists has_prefix (Sys.readdir dir) then ()
    else begin
      (* the child is still mid-campaign; look again shortly *)
      Unix.sleepf 0.005;
      match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ -> wait_for_sidecar ()
      | _ -> fail "kill-child finished before any sidecar was observed"
    end
  in
  wait_for_sidecar ();
  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid);
  let killed_resumed =
    Inject.run ~jobs ~checkpoint:ck_kill ~resume:ck_kill ~slice:selftest_slice small
  in
  if Inject.report_json ~timing:false killed_resumed <> full_json then
    fail "campaign killed mid-task then resumed diverged from the full report";
  if Array.exists has_prefix (Sys.readdir dir) then
    fail "completed campaign left in-flight sidecars behind";
  Sys.remove ck_kill;
  Format.fprintf ppf "kill ok: SIGKILL mid-task, sidecar resume reproduced the report@.";
  (* 6. observability: the campaign counters must not depend on the job
     count, the heartbeat status file must be valid JSON whenever it is
     observed, and the report's timing key must parse *)
  let counters_at jobs =
    let obs = Obs.create () in
    ignore (Inject.run ~jobs ~obs small);
    Obs.to_prometheus ~timing:false obs
  in
  let m1 = counters_at 1 in
  let m2 = counters_at (max 1 (min 2 (Domain.recommended_domain_count ()))) in
  if m1 = "" then fail "metrics dump is empty";
  if m1 <> m2 then fail "counters differ between --jobs 1 and --jobs 2:\n%s\nvs\n%s" m1 m2;
  let hb_path = tmp ".status.json" in
  let hb = Obs.Heartbeat.create ~interval_s:0.0 ~path:hb_path () in
  let hb_report = Inject.run ~jobs ~obs:(Obs.create ()) ~heartbeat:hb small in
  let status = read_file hb_path in
  (match Json.parse status with
  | Error e -> fail "final heartbeat status is not valid JSON (%s): %s" e status
  | Ok j -> (
      match Option.bind (Json.member "tasks_done" j) Json.to_int with
      | Some n when n = List.length hb_report.Inject.r_records -> ()
      | Some n -> fail "heartbeat reports %d tasks done, campaign ran %d" n
                    (List.length hb_report.Inject.r_records)
      | None -> fail "heartbeat status lacks tasks_done: %s" status));
  Sys.remove hb_path;
  (match Json.parse (Inject.report_json ~timing:true hb_report) with
  | Error e -> fail "timed report is not valid JSON: %s" e
  | Ok j ->
      if Option.bind (Json.member "timing" j) (Json.member "task_wall_p99_s") = None then
        fail "timed report lacks timing.task_wall_p99_s");
  Format.fprintf ppf
    "metrics ok: counters jobs-independent, heartbeat valid JSON, timing key parses@.";
  Format.fprintf ppf "self-test ok@."

(* -- driver ------------------------------------------------------------------ *)

let () =
  let seeds = ref 8 in
  let start = ref 0 in
  let jobs = ref (Cheri_exec.Exec.Pool.default_jobs ()) in
  let kinds = ref Inject.all_kinds in
  let workloads = ref Inject.builtin_workloads in
  let fuel = ref Inject.default_fuel in
  let deadline = ref None in
  let json = ref None in
  let checkpoint = ref None in
  let resume = ref None in
  let limit = ref None in
  let slice = ref None in
  let metrics = ref None in
  (* [Some None] = dump to stdout, [Some (Some f)] = write to [f] *)
  let heartbeat_s = ref None in
  let status_path = ref "status.json" in
  let selftest = ref false in
  (* hidden: the child process of the self-test's SIGKILL check — runs
     the small campaign sliced, with sidecars, until killed *)
  (match Array.to_list Sys.argv with
  | _ :: "selftest-kill-child" :: ck :: _ ->
      ignore (Inject.run ~jobs:1 ~checkpoint:ck ~slice:selftest_slice (small_campaign ()));
      exit 0
  | _ -> ());
  Cli.parse ~prog:"cheri-inject" ~usage:"[OPTIONS]   (kinds: bitflip tag-clear tag-set cap-field alloc-fail)"
    [
      Cli.int "--seeds" ~metavar:"N" ~doc:"seeds per (workload x ABI x kind) cell (default 8)"
        (fun n -> seeds := n);
      Cli.int "--start" ~metavar:"N" ~doc:"first seed (default 0)" (fun n -> start := n);
      Cli.int "--jobs" ~metavar:"N" ~doc:"worker domains (default: host parallelism)"
        (fun n -> jobs := max 1 n);
      Cli.int "--fuel" ~metavar:"N" ~doc:"per-task instruction budget" (fun n -> fuel := max 1 n);
      Cli.int "--limit" ~metavar:"N" ~doc:"run only the first N tasks" (fun n -> limit := Some n);
      Cli.int "--slice" ~metavar:"N" ~doc:"preempt each task every N instructions"
        (fun n -> slice := Some (max 1 n));
      Cli.float ~strictly_positive:true "--deadline" ~metavar:"SECS"
        ~doc:"per-task wall-clock watchdog"
        (fun x -> deadline := Some x);
      Cli.string "--kinds" ~metavar:"K1,K2" ~doc:"fault kinds to inject (default: all)"
        (fun v ->
          kinds :=
            List.map
              (fun k ->
                match Inject.kind_of_key k with
                | Some kind -> kind
                | None ->
                    Cli.die "unknown fault kind %s (known: %s)" k
                      (String.concat " " (List.map Inject.kind_key Inject.all_kinds)))
              (String.split_on_char ',' v));
      Cli.string "--workloads" ~metavar:"W1,W2" ~doc:"workloads to fault (default: all builtins)"
        (fun v ->
          workloads :=
            List.map
              (fun name ->
                match Inject.find_workload name with
                | Some w -> w
                | None ->
                    Cli.die "unknown workload %s (known: %s)" name
                      (String.concat " " Inject.workload_names))
              (String.split_on_char ',' v));
      Cli.string "--json" ~metavar:"FILE" ~doc:"write the detection matrix as JSON"
        (fun f -> json := Some f);
      Cli.string "--checkpoint" ~metavar:"FILE" ~doc:"append one JSONL record per finished task"
        (fun f -> checkpoint := Some f);
      Cli.string "--resume" ~metavar:"FILE" ~doc:"restart from a checkpoint file"
        (fun f -> resume := Some f);
      Cli.opt_string "--metrics" ~metavar:"FILE" ~doc:"dump the metrics registry to stdout or FILE"
        (fun v -> metrics := Some v);
      Cli.float "--heartbeat" ~metavar:"SECS" ~doc:"status-file cadence"
        (fun x -> heartbeat_s := Some x);
      Cli.string "--status" ~metavar:"FILE" ~doc:"heartbeat target (default status.json)"
        (fun f -> status_path := f);
      Cli.unit "--self-test" ~doc:"deterministic CI smoke, then exit" (fun () -> selftest := true);
      Cli.unit "--list" ~doc:"print the workload names and exit"
        (fun () ->
          List.iter print_endline Inject.workload_names;
          exit 0);
    ]
    (List.tl (Array.to_list Sys.argv));
  if !selftest then self_test ~seeds:!seeds ~jobs:!jobs
  else begin
    let c =
      Inject.default_campaign ~workloads:!workloads ~kinds:!kinds ~seeds:!seeds
        ~first_seed:!start ~fuel:!fuel ?deadline_s:!deadline ()
    in
    let heartbeat =
      Option.map
        (fun s -> Obs.Heartbeat.create ~interval_s:s ~path:!status_path ())
        !heartbeat_s
    in
    let report =
      match
        Inject.run ~jobs:!jobs ?checkpoint:!checkpoint ?resume:!resume ?limit:!limit
          ?slice:!slice ?heartbeat c
      with
      | r -> r
      | exception Inject.Resume_mismatch msg ->
          Format.eprintf "--resume: %s@." msg;
          exit 2
    in
    Inject.pp_report ppf report;
    Option.iter
      (fun path ->
        write_file path (Inject.report_json report);
        Format.fprintf ppf "wrote %s@." path)
      !json;
    (* final metrics dump: JSONL when the target looks like JSON,
       Prometheus text otherwise (and on stdout) *)
    Option.iter
      (fun dest ->
        match dest with
        | None -> print_string (Obs.to_prometheus Obs.default)
        | Some path ->
            let data =
              if Filename.check_suffix path ".json" || Filename.check_suffix path ".jsonl"
              then Obs.to_jsonl Obs.default
              else Obs.to_prometheus Obs.default
            in
            write_file path data;
            Format.fprintf ppf "wrote %s@." path)
      !metrics;
    Format.pp_print_flush ppf ();
    if report.Inject.r_errors <> [] then exit 1;
    if !limit = None && not (guarantee_holds report) then begin
      Format.eprintf
        "silent corruptions on a CHERI ABI for pointer-protecting fault kinds@.";
      exit 1
    end
  end
