(* Run a mini-C source file on the abstract machine under a chosen
   pointer model (default CHERIv3). Model names resolve through
   Registry.lookup: canonical key, alias, or table display name.

     cheri-run [-m pdp11|hardbound|mpx|relaxed|strict|cheriv2|cheriv3] file.c
     cheri-run -a file.c          # run under every model
     cheri-run -S [-abi mips|v2|v3] file.c   # dump softcore assembly
     cheri-run -x [-abi mips|v2|v3] file.c   # compile and execute on the softcore
     cheri-run --fuel N ... file.c  # step budget: softcore instructions or
                                    # interpreter expression evaluations;
                                    # exhaustion reports as a structured hang

   Observability (each implies -x, i.e. softcore execution):

     cheri-run --profile file.c              # hot-PC profile + event counters
     cheri-run --trace[=FILE] file.c         # JSONL event dump (stdout or FILE)
     cheri-run --stats-json FILE file.c      # machine stats + telemetry as JSON ("-" = stdout)
     cheri-run --chrome-trace FILE file.c    # Chrome trace_event JSON for Perfetto

   Resumable execution (each implies -x):

     cheri-run --slice N file.c              # run in fuel slices of N instructions
     cheri-run --snapshot FILE file.c        # persist a machine snapshot at every
                                             # slice boundary; removed on completion
     cheri-run --resume FILE file.c          # restore FILE (same source + ABI) and
                                             # continue; bad images exit 2 *)

module Telemetry = Cheri_telemetry.Telemetry
module Machine = Cheri_isa.Machine
module Snapshot = Cheri_snapshot.Snapshot
module Obs = Cheri_obs.Obs
module Cli = Cheri_util.Cli

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg ->
      prerr_endline msg;
      exit 1
  | ic ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s

let write_file path contents =
  if path = "-" then print_string contents
  else begin
    let oc = open_out_bin path in
    output_string oc contents;
    close_out oc
  end

let report name outcome =
  match outcome with
  | Cheri_interp.Interp.Exit (code, out) ->
      print_string out;
      Format.printf "[%s] exit %Ld@." name code
  | Fault (f, out) ->
      print_string out;
      Format.printf "[%s] FAULT: %a@." name Cheri_models.Fault.pp f
  | Stuck msg -> Format.printf "[%s] stuck: %s@." name msg
  | Exhausted out ->
      print_string out;
      Format.printf "[%s] HANG: step limit exhausted@." name

let dump_assembly abi src =
  let linked = Cheri_compiler.Codegen.compile_source abi src in
  Array.iteri (fun i insn -> Format.printf "%5d  %a@." i Cheri_isa.Insn.pp insn)
    linked.Cheri_asm.Asm.code;
  Format.printf "; data segment: %d bytes at 0x%Lx@."
    (Bytes.length linked.Cheri_asm.Asm.data)
    linked.Cheri_asm.Asm.data_base;
  List.iter (fun (s, i) -> Format.printf "; code symbol %-24s -> %d@." s i)
    (List.sort compare linked.Cheri_asm.Asm.code_symbols)

(* Machine stats plus the telemetry snapshot, as one JSON object. *)
let stats_json abi outcome (st : Machine.stats) (snap : Telemetry.snapshot) =
  Printf.sprintf
    "{\"abi\":\"%s\",\"outcome\":\"%s\",\"cycles\":%d,\"instret\":%d,\"loads\":%d,\"stores\":%d,\"cap_loads\":%d,\"cap_stores\":%d,\"l1_hits\":%d,\"l1_misses\":%d,\"l2_hits\":%d,\"l2_misses\":%d,\"heap_allocated\":%Ld,\"telemetry\":%s}"
    (Telemetry.json_escape (Cheri_compiler.Abi.name abi))
    (Telemetry.json_escape (Format.asprintf "%a" Machine.pp_outcome outcome))
    st.Machine.st_cycles st.Machine.st_instret st.Machine.st_loads st.Machine.st_stores
    st.Machine.st_cap_loads st.Machine.st_cap_stores st.Machine.st_l1_hits
    st.Machine.st_l1_misses st.Machine.st_l2_hits st.Machine.st_l2_misses
    st.Machine.st_heap_allocated
    (Telemetry.snapshot_to_json snap)

type telemetry_opts = {
  profile : bool;
  trace : string option option;  (* None = off, Some None = stdout, Some (Some f) = file *)
  stats_json_to : string option;
  chrome_trace_to : string option;
  fuel : int option;  (* --fuel: softcore instruction / interpreter step budget *)
  slice : int option;  (* --slice: preempt the softcore every N instructions *)
  snapshot_to : string option;  (* --snapshot: persist state at slice boundaries *)
  resume_from : string option;  (* --resume: restore a snapshot before running *)
  metrics : string option option;  (* --metrics: dump the registry (stdout or FILE) *)
  heartbeat_s : float option;  (* --heartbeat: status file cadence; implies slicing *)
  status_path : string;  (* --status: where the heartbeat writes (default status.json) *)
}

let telemetry_wanted o =
  o.profile || o.trace <> None || o.stats_json_to <> None || o.chrome_trace_to <> None
  (* --metrics needs a live sink too: the per-class instruction and
     fault counters are bridged from the telemetry snapshot post-run *)
  || o.metrics <> None
  || o.heartbeat_s <> None

let resumable_wanted o = o.slice <> None || o.snapshot_to <> None || o.resume_from <> None

(* --snapshot without an explicit granularity still has to stop
   somewhere; a few million instructions keeps the save overhead in the
   noise while bounding the lost work on a crash *)
let default_slice = 4_000_000

let execute_on_softcore opts abi src =
  let linked = Cheri_compiler.Codegen.compile_source abi src in
  let m = Cheri_compiler.Codegen.machine_for abi linked in
  let sink =
    if telemetry_wanted opts then begin
      (* a deep ring only matters when events are dumped *)
      let capacity =
        if opts.trace <> None || opts.chrome_trace_to <> None then 1 lsl 16 else 4096
      in
      let s = Telemetry.Sink.create ~capacity () in
      Machine.set_sink m s;
      s
    end
    else Telemetry.Sink.null
  in
  let abi_name = Cheri_compiler.Abi.name abi in
  let snap_fail e =
    Format.eprintf "cheri-run: %a@." Snapshot.pp_error e;
    exit 2
  in
  (match opts.resume_from with
  | None -> ()
  | Some path -> (
      match Snapshot.load path with
      | Error e -> snap_fail e
      | Ok img -> (
          match Snapshot.restore m ~abi:abi_name img with
          | Error e -> snap_fail e
          | Ok () ->
              Format.eprintf "[resumed %s at %d retired instructions]@." path
                (Snapshot.image_instret img))));
  let words_before = Gc.minor_words () in
  let wall_before = Unix.gettimeofday () in
  (* --heartbeat implies slicing: the status file can only be refreshed
     when the machine yields between instructions *)
  let heartbeat =
    Option.map
      (fun s -> Obs.Heartbeat.create ~interval_s:s ~path:opts.status_path ())
      opts.heartbeat_s
  in
  let budget = Option.value opts.fuel ~default:200_000_000 in
  let status () =
    Obs.status_json ~tasks_done:(Machine.instret m) ~tasks_total:budget
      ~elapsed_s:(Unix.gettimeofday () -. wall_before)
      ()
  in
  let outcome =
    Obs.Span.with_ Obs.default ("run:" ^ abi_name) @@ fun () ->
    if not (opts.slice <> None || opts.snapshot_to <> None || heartbeat <> None) then
      Machine.run ?fuel:opts.fuel m
    else begin
      let slice = Option.value opts.slice ~default:default_slice in
      let save () =
        Option.iter
          (fun path ->
            match Snapshot.save ~abi:abi_name ~path m with
            | Ok bytes ->
                Format.eprintf "[snapshot %s: %d bytes at %d retired instructions]@."
                  path bytes (Machine.instret m)
            | Error e -> snap_fail e)
          opts.snapshot_to
      in
      Option.iter (fun hb -> Obs.Heartbeat.force hb status) heartbeat;
      (* the machine stops only between instructions, so this loop is
         observably identical to one uninterrupted Machine.run ~fuel:budget *)
      let rec go left =
        match Machine.run ~fuel:(min slice left) ~yield:true m with
        | Machine.Yielded when left > slice ->
            save ();
            Option.iter (fun hb -> Obs.Heartbeat.beat hb status) heartbeat;
            go (left - slice)
        | Machine.Yielded ->
            (* whole budget spent: leave the last snapshot behind so a
               --resume with a fresh --fuel can continue the run *)
            save ();
            Machine.Fuel_exhausted
        | finished ->
            (* the run is over; a crash-recovery snapshot would now only
               invite resuming a finished program *)
            Option.iter
              (fun path ->
                if Sys.file_exists path then try Sys.remove path with Sys_error _ -> ())
              opts.snapshot_to;
            finished
      in
      go budget
    end
  in
  Option.iter (fun hb -> Obs.Heartbeat.force hb status) heartbeat;
  let wall_s = Unix.gettimeofday () -. wall_before in
  let minor_words = Gc.minor_words () -. words_before in
  print_string (Machine.output m);
  let st = Machine.stats m in
  Format.printf "[%s] %a  (%d cycles, %d instructions)@."
    (Cheri_compiler.Abi.name abi)
    Machine.pp_outcome outcome st.Machine.st_cycles st.Machine.st_instret;
  if opts.profile then begin
    (* host-side cost of this run: simulator throughput and GC pressure
       per retired instruction (includes telemetry overhead, since
       --profile runs with a live sink) *)
    let insns = float_of_int (max 1 st.Machine.st_instret) in
    Format.printf "host: %.3f s wall, %.0f insn/s, %.2f minor words/insn@." wall_s
      (insns /. wall_s) (minor_words /. insns);
    Format.printf "%a" Telemetry.pp_summary sink
  end;
  (match opts.trace with
  | None -> ()
  | Some dest ->
      let jsonl = Telemetry.jsonl_of_events sink in
      (match dest with None -> print_string jsonl | Some f -> write_file f jsonl));
  Option.iter
    (fun f -> write_file f (stats_json abi outcome st (Telemetry.snapshot sink)))
    opts.stats_json_to;
  Option.iter (fun f -> write_file f (Telemetry.chrome_trace sink)) opts.chrome_trace_to;
  Option.iter
    (fun dest ->
      (* bridge the run's telemetry counters into the registry, then
         dump it: JSONL when the target looks like JSON, Prometheus
         text otherwise (and on stdout) *)
      Telemetry.obs_to_counters (Telemetry.snapshot sink);
      match dest with
      | None -> print_string (Obs.to_prometheus Obs.default)
      | Some path ->
          let data =
            if Filename.check_suffix path ".json" || Filename.check_suffix path ".jsonl"
            then Obs.to_jsonl Obs.default
            else Obs.to_prometheus Obs.default
          in
          write_file path data)
    opts.metrics;
  match outcome with Machine.Exit 0L -> () | _ -> exit 1

let prog = "cheri-run"
let usage_tail = "[OPTIONS] file.c"

let () =
  let model = ref "cheriv3" in
  let all = ref false in
  let dump = ref false in
  let exec = ref false in
  let abi = ref Cheri_compiler.Abi.(Cheri Cheri_core.Cap_ops.V3) in
  let file = ref None in
  let profile = ref false in
  let trace = ref None in
  let stats_json_to = ref None in
  let chrome_trace_to = ref None in
  let fuel = ref None in
  let slice = ref None in
  let snapshot_to = ref None in
  let resume_from = ref None in
  let metrics = ref None in
  let heartbeat_s = ref None in
  let status_path = ref "status.json" in
  let flags =
    [
      Cli.string "-m" ~metavar:"MODEL" ~doc:"pointer model to interpret under (default cheriv3)"
        (fun m -> model := m);
      Cli.unit "-a" ~doc:"interpret under every model" (fun () -> all := true);
      Cli.unit "-S" ~doc:"dump softcore assembly instead of running" (fun () -> dump := true);
      Cli.unit "-x" ~doc:"compile and execute on the softcore" (fun () -> exec := true);
      Cli.string "-abi" ~metavar:"ABI" ~doc:"softcore ABI: mips|v2|v3 (with -S/-x)"
        (fun a ->
          match Cheri_compiler.Abi.of_key a with
          | Some x -> abi := x
          | None -> Cli.die "unknown ABI %s" a);
      Cli.int ~min:1 "--fuel" ~metavar:"N" ~doc:"step budget; exhaustion reports as a hang"
        (fun n -> fuel := Some n);
      Cli.unit "--profile" ~doc:"hot-PC profile + event counters (implies -x)"
        (fun () -> profile := true);
      Cli.opt_string "--trace" ~metavar:"FILE" ~doc:"JSONL event dump to stdout or FILE (implies -x)"
        (fun v -> trace := Some v);
      Cli.string "--stats-json" ~metavar:"FILE" ~doc:"machine stats + telemetry as JSON, \"-\" = stdout"
        (fun f -> stats_json_to := Some f);
      Cli.string "--chrome-trace" ~metavar:"FILE" ~doc:"Chrome trace_event JSON for Perfetto"
        (fun f -> chrome_trace_to := Some f);
      Cli.opt_string "--metrics" ~metavar:"FILE" ~doc:"dump the metrics registry to stdout or FILE"
        (fun v -> metrics := Some v);
      Cli.float "--heartbeat" ~metavar:"SECS" ~doc:"status-file cadence; implies slicing"
        (fun x -> heartbeat_s := Some x);
      Cli.string "--status" ~metavar:"FILE" ~doc:"heartbeat target (default status.json)"
        (fun f -> status_path := f);
      Cli.int ~min:1 "--slice" ~metavar:"N" ~doc:"run in fuel slices of N instructions"
        (fun n -> slice := Some n);
      Cli.string "--snapshot" ~metavar:"FILE" ~doc:"persist a snapshot at every slice boundary"
        (fun f -> snapshot_to := Some f);
      Cli.string "--resume" ~metavar:"FILE" ~doc:"restore FILE and continue (same source + ABI)"
        (fun f -> resume_from := Some f);
    ]
  in
  Cli.parse ~prog ~usage:usage_tail
    ~positional:(fun f -> file := Some f)
    flags
    (List.tl (Array.to_list Sys.argv));
  let opts =
    {
      profile = !profile;
      trace = !trace;
      stats_json_to = !stats_json_to;
      chrome_trace_to = !chrome_trace_to;
      fuel = !fuel;
      slice = !slice;
      snapshot_to = !snapshot_to;
      resume_from = !resume_from;
      metrics = !metrics;
      heartbeat_s = !heartbeat_s;
      status_path = !status_path;
    }
  in
  let usage () =
    prerr_string (Cli.help_text ~prog ~usage:usage_tail flags);
    exit 2
  in
  match !file with
  | None -> usage ()
  | Some path -> (
      let src = read_file path in
      match
        try Ok (Minic.Typecheck.compile src) with
        | Minic.Typecheck.Type_error m -> Error ("type error: " ^ m)
        | Minic.Parser.Parse_error (m, line) ->
            Error (Printf.sprintf "parse error at line %d: %s" line m)
        | Minic.Lexer.Lex_error (m, line) ->
            Error (Printf.sprintf "lex error at line %d: %s" line m)
      with
      | Error msg ->
          prerr_endline msg;
          exit 1
      | Ok prog ->
          if !dump then dump_assembly !abi src
          else if !exec || telemetry_wanted opts || resumable_wanted opts then
            execute_on_softcore opts !abi src
          else if !all then
            List.iter
              (fun m ->
                let module M = (val m : Cheri_models.Model.S) in
                let module I = Cheri_interp.Interp.Make (M) in
                report M.name (I.run_program ?max_steps:!fuel prog))
              Cheri_models.Registry.all
          else
            match Cheri_models.Registry.lookup !model with
            | None ->
                Format.eprintf "unknown model %s (known: %s)@." !model
                  (String.concat "|" Cheri_models.Registry.keys);
                exit 2
            | Some e ->
                let module M = (val e.Cheri_models.Registry.model) in
                let module I = Cheri_interp.Interp.Make (M) in
                report M.name (I.run_program ?max_steps:!fuel prog))
